// FlightRecorder unit tests: ring wrap/drop accounting, the live wait
// tables, cluster-style source merging, and byte-stable JSON.
#include "sim/flight_recorder.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace simt {
namespace {

FlightEvent note(std::uint64_t ticket, Cycle cycle = 0) {
  return {FlightKind::kNote, 7, 0, ticket, ticket * 10, 0, cycle};
}

TEST(FlightRecorderTest, RingWrapKeepsMostRecentAndCountsDrops) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(note(i, i));

  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);

  // The survivors are the most recent four, in recording order, and
  // seq is the global index (survives the wrap).
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].source, 0u);
  }
}

TEST(FlightRecorderTest, WaitTablesTrackClaimsAndReservations) {
  FlightRecorder rec;

  rec.record({FlightKind::kClaim, 3, 0, 17, 0, 2, 100});
  rec.record({FlightKind::kReserve, 5, 0, 9, 42, 1, 101});
  // Same ticket on a transfer ring is a distinct key (unit differs).
  rec.record({FlightKind::kXferReserve, 6, 2, 9, 43, 0, 102});

  auto monitors = rec.monitors();
  auto parked = rec.parked();
  ASSERT_EQ(monitors.size(), 1u);
  ASSERT_EQ(parked.size(), 2u);
  const FlightRecorder::WaitKey claim_key{0, 0, 17};
  EXPECT_EQ(monitors.at(claim_key).actor, 3u);
  EXPECT_EQ(monitors.at(claim_key).band, 2u);
  EXPECT_EQ(monitors.at(claim_key).since, 100u);
  const FlightRecorder::WaitKey park_key{0, 0, 9};
  const FlightRecorder::WaitKey xfer_key{0, 2, 9};
  EXPECT_EQ(parked.at(park_key).actor, 5u);
  EXPECT_EQ(parked.at(park_key).token, 42u);
  EXPECT_EQ(parked.at(xfer_key).actor, 6u);

  // Deliver retires the monitor; writes retire each reservation under
  // its own (unit, ticket) key.
  rec.record({FlightKind::kDeliver, 3, 0, 17, 0, 2, 110});
  rec.record({FlightKind::kWrite, 5, 0, 9, 42, 1, 111});
  EXPECT_TRUE(rec.monitors().empty());
  ASSERT_EQ(rec.parked().size(), 1u);
  EXPECT_EQ(rec.parked().begin()->first, xfer_key);
  rec.record({FlightKind::kXferWrite, 6, 2, 9, 43, 0, 112});
  EXPECT_TRUE(rec.parked().empty());
}

TEST(FlightRecorderTest, LogStepCoalescesOneWaveBatch) {
  FlightRecorder rec;

  // Four lanes of one wave's claim batch at the same cycle: one ring
  // event whose ticket/band are the first lane's and whose payload is
  // the batch width.
  for (std::uint64_t t = 20; t < 24; ++t) {
    rec.log_step(FlightKind::kClaim, 3, 0, t, 1, 500);
  }
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightKind::kClaim);
  EXPECT_EQ(events[0].actor, 3u);
  EXPECT_EQ(events[0].ticket, 20u);
  EXPECT_EQ(events[0].payload, 4u);
  EXPECT_EQ(events[0].band, 1u);
  EXPECT_EQ(events[0].cycle, 500u);

  // log_step never touches the wait tables (wait transitions go through
  // full record() at the feed sites).
  EXPECT_TRUE(rec.monitors().empty());
  EXPECT_TRUE(rec.parked().empty());
}

TEST(FlightRecorderTest, LogStepFlushesOnMismatchRecordAndReaders) {
  FlightRecorder rec;

  // A change in any of (kind, actor, unit, cycle) starts a new batch.
  rec.log_step(FlightKind::kDeliver, 2, 0, 7, 0, 100);
  rec.log_step(FlightKind::kDeliver, 2, 0, 8, 0, 100);
  rec.log_step(FlightKind::kDeliver, 2, 0, 9, 0, 101);  // new cycle
  rec.log_step(FlightKind::kClaim, 2, 0, 10, 0, 101);   // new kind

  // A full record() flushes the pending batch first, so ring order
  // matches feed order.
  rec.record({FlightKind::kComplete, 2, 0, 0, 5, 0, 102});

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FlightKind::kDeliver);
  EXPECT_EQ(events[0].payload, 2u);  // tickets 7,8 coalesced
  EXPECT_EQ(events[1].kind, FlightKind::kDeliver);
  EXPECT_EQ(events[1].ticket, 9u);
  EXPECT_EQ(events[1].payload, 1u);
  EXPECT_EQ(events[2].kind, FlightKind::kClaim);
  EXPECT_EQ(events[2].payload, 1u);
  EXPECT_EQ(events[3].kind, FlightKind::kComplete);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // seq stamped at flush, in feed order
  }

  // Readers see the pending batch too: size()/recorded() flush it.
  rec.log_step(FlightKind::kWrite, 2, 0, 11, 0, 103);
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.recorded(), 5u);
}

TEST(FlightRecorderTest, LogStepsAddsWholeBatchesAndClearResetsPending) {
  FlightRecorder rec;

  // A width-aware batch merges into a matching pending step...
  rec.log_step(FlightKind::kClaim, 4, 0, 30, 0, 200);
  rec.log_steps(FlightKind::kClaim, 4, 0, 31, 0, 200, 7);
  // ...and zero-width calls are ignored.
  rec.log_steps(FlightKind::kClaim, 4, 0, 99, 0, 200, 0);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ticket, 30u);
  EXPECT_EQ(events[0].payload, 8u);

  // clear() drops a pending batch along with the ring.
  rec.log_step(FlightKind::kClaim, 4, 0, 40, 0, 201);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorderTest, MergeRemapsSourcesAndAccumulatesDrops) {
  FlightRecorder dev0(2), dev1(8), sink(16);
  dev0.set_source_label("dev0");
  dev1.set_source_label("dev1");
  for (std::uint64_t i = 0; i < 3; ++i) dev0.record(note(i));  // 1 drop
  dev1.record({FlightKind::kClaim, 4, 0, 8, 0, 1, 50});

  sink.merge_from(dev0);
  sink.merge_from(dev1);

  const std::vector<std::string> sources = sink.sources();
  ASSERT_EQ(sources.size(), 3u);
  EXPECT_EQ(sources[0], "");
  EXPECT_EQ(sources[1], "dev0");
  EXPECT_EQ(sources[2], "dev1");
  EXPECT_EQ(sink.dropped(), 1u);

  const std::vector<FlightEvent> events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].source, 1u);
  EXPECT_EQ(events[1].source, 1u);
  EXPECT_EQ(events[2].source, 2u);
  // Per-source seq survives the merge (dev0's survivors are its events
  // 1 and 2 after the ring dropped event 0).
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 0u);

  // Wait keys carry the remapped source, so identical tickets from
  // different devices do not collide.
  auto monitors = sink.monitors();
  ASSERT_EQ(monitors.size(), 1u);
  EXPECT_EQ(std::get<0>(monitors.begin()->first), 2u);
  EXPECT_EQ(std::get<2>(monitors.begin()->first), 8u);
}

TEST(FlightRecorderTest, ClearDropsDataButKeepsLabel) {
  FlightRecorder rec(4);
  rec.set_source_label("dev3");
  rec.record({FlightKind::kReserve, 1, 0, 2, 3, 0, 4});
  for (std::uint64_t i = 0; i < 6; ++i) rec.record(note(i));

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.parked().empty());
  ASSERT_FALSE(rec.sources().empty());
  EXPECT_EQ(rec.sources()[0], "dev3");

  // seq restarts from zero after a clear.
  rec.record(note(9));
  EXPECT_EQ(rec.snapshot()[0].seq, 0u);
}

TEST(FlightRecorderTest, ToJsonIsByteStableAndParses) {
  auto feed = [](FlightRecorder& rec) {
    rec.record({FlightKind::kReserve, 2, 0, 5, 77, 1, 10});
    rec.record({FlightKind::kClaim, 3, 0, 1, 0, 0, 11});
    rec.record({FlightKind::kWrite, 2, 0, 5, 77, 1, 12});
  };
  FlightRecorder a(8), b(8);
  feed(a);
  feed(b);
  EXPECT_EQ(a.to_json(), b.to_json());

  const auto doc = scq::util::parse_json(a.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("flight_recorder").number, 1.0);
  EXPECT_EQ(doc->at("recorded").number, 3.0);
  EXPECT_EQ(doc->at("dropped").number, 0.0);
  ASSERT_EQ(doc->at("events").array.size(), 3u);
  EXPECT_EQ(doc->at("events").array[0].at("kind").str, "reserve");
  // The write retired the reservation; the claim is still live.
  EXPECT_EQ(doc->at("parked").array.size(), 0u);
  ASSERT_EQ(doc->at("monitors").array.size(), 1u);
  EXPECT_EQ(doc->at("monitors").array[0].at("ticket").number, 1.0);
}

}  // namespace
}  // namespace simt
