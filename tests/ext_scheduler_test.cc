// Tests for the extension schedulers (LockedStack, DistributedQueue):
// LIFO semantics, lock serialization, stealing, termination detection,
// and end-to-end BFS correctness through the same driver as the paper's
// variants.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "bfs/pt_bfs.h"
#include "core/counters.h"
#include "core/ext_schedulers.h"
#include "core/pt_driver.h"
#include "graph/bfs_ref.h"
#include "graph/generators.h"

namespace scq {
namespace {

using simt::Device;
using simt::DeviceConfig;
using simt::Kernel;
using simt::Wave;

DeviceConfig test_config(std::uint32_t cus = 4, std::uint32_t waves = 2) {
  DeviceConfig cfg;
  cfg.name = "ext";
  cfg.num_cus = cus;
  cfg.waves_per_cu = waves;
  cfg.mem_latency = 100;
  cfg.atomic_latency = 40;
  cfg.atomic_service = 4;
  cfg.lds_latency = 8;
  cfg.issue_cost = 2;
  cfg.kernel_launch_overhead = 500;
  return cfg;
}

TEST(MakeSchedulerTest, BuildsEveryVariant) {
  for (const auto v :
       {QueueVariant::kBase, QueueVariant::kAn, QueueVariant::kRfan,
        QueueVariant::kStack, QueueVariant::kDistrib}) {
    Device dev(test_config());
    auto q = make_scheduler(dev, v, 1024);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->variant(), v);
  }
}

TEST(MakeSchedulerTest, NamesForNewVariants) {
  EXPECT_EQ(to_string(QueueVariant::kStack), "LOCK-STACK");
  EXPECT_EQ(to_string(QueueVariant::kDistrib), "DISTRIB");
}

TEST(MakeQueueVariantTest, RejectsExtensionVariants) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 64);
  EXPECT_THROW((void)make_queue_variant(QueueVariant::kStack, layout),
               simt::SimError);
}

// ---- LockedStack ----

TEST(LockedStackTest, SeedThenPopDeliversLifoEagerly) {
  Device dev(test_config());
  LockedStack stack(make_device_queue(dev, 64));
  const std::vector<std::uint64_t> tokens{10, 11, 12};
  stack.seed(dev, tokens);

  std::array<std::uint64_t, kWaveWidth> got{};
  LaneMask arrived = 0;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = 0b11;  // two hungry lanes, three tokens
    co_await stack.acquire_slots(w, st);
    EXPECT_EQ(st.ready, 0b11u) << "stack delivers eagerly under its lock";
    arrived = co_await stack.check_arrival(w, st, got);
  });
  EXPECT_EQ(arrived, 0b11u);
  // LIFO: top-most tokens first.
  EXPECT_EQ(got[0], 12u);
  EXPECT_EQ(got[1], 11u);
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(0)), 1u) << "top shrank by 2";
}

TEST(LockedStackTest, PushThenPopRoundTrips) {
  Device dev(test_config());
  LockedStack stack(make_device_queue(dev, 256));
  std::array<std::uint64_t, kWaveWidth> got{};
  LaneMask arrived = 0;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    st.push_token(0, 5);
    st.push_token(0, 6);
    st.push_token(3, 7);
    co_await stack.publish(w, st);
    st.hungry = 0b111;
    co_await stack.acquire_slots(w, st);
    arrived = co_await stack.check_arrival(w, st, got);
  });
  EXPECT_EQ(std::popcount(arrived), 3);
  const std::set<std::uint64_t> seen{got[0], got[1], got[2]};
  EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7}));
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(1)), 3u) << "pushed counter";
}

TEST(LockedStackTest, ContendedLockSerializes) {
  Device dev(test_config(8, 4));
  LockedStack stack(make_device_queue(dev, 1 << 14));
  // Every wave pushes a batch; the lock forces one wave at a time.
  const auto result = dev.launch(32, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    for (unsigned lane = 0; lane < 4; ++lane) {
      st.push_token(lane, w.workgroup_id() * 100 + lane);
    }
    co_await stack.publish(w, st);
  });
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(0)), 32u * 4);
  EXPECT_GT(result.stats.cas_failures, 0u) << "lock contention must show up";
}

TEST(LockedStackTest, OverflowParksInsteadOfAborting) {
  // The former abort site: 16 tokens into a capacity-8 stack. The stack
  // fills, the remainder parks in the wave, and `pushed` covers the
  // whole batch so termination stays open for the parked half.
  Device dev(test_config());
  LockedStack stack(make_device_queue(dev, 8));
  WaveQueueState st{};
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    st.clear_produce();
    for (unsigned lane = 0; lane < 16; ++lane) st.push_token(lane, lane);
    co_await stack.publish(w, st);
  });
  EXPECT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(0)), 8u) << "top at capacity";
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(1)), 16u)
      << "pushed counts the parked remainder too";
  EXPECT_EQ(st.n_parked, 8u);
  EXPECT_EQ(result.stats.user[kTokensEnqueued], 8u);
}

TEST(LockedStackTest, ParkedTokensDrainAfterPops) {
  // Overflow then consume: parked leftovers land on the next publish
  // once pops free stack space, and every token is delivered once.
  Device dev(test_config());
  LockedStack stack(make_device_queue(dev, 8));

  std::set<std::uint64_t> seen;
  bool drained = false;
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    for (unsigned lane = 0; lane < 16; ++lane) st.push_token(lane, 50 + lane);
    co_await stack.publish(w, st);  // 8 land, 8 park

    std::array<std::uint64_t, kWaveWidth> recv{};
    for (int round = 0; round < 50 && seen.size() < 16; ++round) {
      st.hungry = 0xffff & ~(st.assigned | st.ready);
      co_await stack.acquire_slots(w, st);
      const LaneMask arrived = co_await stack.check_arrival(w, st, recv);
      for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
        if ((arrived >> lane) & 1u) seen.insert(recv[lane]);
      }
      st.clear_produce();
      co_await stack.publish(w, st);  // flushes parked into freed space
      co_await stack.report_complete(
          w, static_cast<std::uint32_t>(std::popcount(arrived)));
    }
    drained = !st.has_parked();
  });

  EXPECT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_TRUE(drained);
  EXPECT_EQ(seen.size(), 16u) << "every token delivered exactly once";
  for (unsigned i = 0; i < 16; ++i) EXPECT_TRUE(seen.count(50 + i));
  EXPECT_EQ(dev.read_word(stack.layout().ctrl.at(0)), 0u) << "stack empty";
}

TEST(LockedStackTest, PublishDeadlockAbortsViaDetector) {
  // A stack that stays full with no consumer anywhere must eventually
  // trip the shared deadlock detector rather than spin forever.
  Device dev(test_config());
  LockedStack stack(make_device_queue(dev, 8));
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    for (unsigned lane = 0; lane < 16; ++lane) st.push_token(lane, lane);
    co_await stack.publish(w, st);
    for (std::uint32_t i = 0; i < kPublishDeadlockRounds + 8; ++i) {
      st.clear_produce();
      co_await stack.publish(w, st);
    }
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("queue full"), std::string::npos);
}

// ---- DistributedQueue ----

TEST(DistributedQueueTest, PartitionsCapacity) {
  Device dev(test_config(4, 2));
  DistributedQueue q(dev, 1000, 4);
  EXPECT_EQ(q.num_queues(), 4u);
  EXPECT_EQ(q.per_queue_capacity(), 250u);
  EXPECT_EQ(q.layout().capacity, 1000u);
}

TEST(DistributedQueueTest, RejectsBadQueueCounts) {
  Device dev(test_config());
  EXPECT_THROW((DistributedQueue{dev, 100, 0}), simt::SimError);
  EXPECT_THROW((DistributedQueue{dev, 100, 64}), simt::SimError);
}

TEST(DistributedQueueTest, PublishGoesToOwnCuQueue) {
  Device dev(test_config(4, 1));
  DistributedQueue q(dev, 1024, 4);
  // Each of 4 waves (one per CU) publishes 2 tokens.
  (void)dev.launch(4, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    st.push_token(0, w.cu_id() * 10);
    st.push_token(1, w.cu_id() * 10 + 1);
    co_await q.publish(w, st);
  });
  // Every sub-queue rear advanced by 2 and holds its own CU's tokens.
  const std::uint64_t per = q.per_queue_capacity();
  for (std::uint32_t cu = 0; cu < 4; ++cu) {
    EXPECT_EQ(dev.read_word(q.layout().slot_addr(cu * per)),
              slot_full_word(0, cu * 10));
    EXPECT_EQ(dev.read_word(q.layout().slot_addr(cu * per + 1)),
              slot_full_word(0, cu * 10 + 1));
  }
}

TEST(DistributedQueueTest, StealingFindsRemoteWork) {
  Device dev(test_config(4, 1));
  DistributedQueue q(dev, 1024, 4);
  const std::vector<std::uint64_t> tokens{42, 43};
  q.seed(dev, tokens);  // seeds sub-queue 0 only

  // A wave on CU 3 must steal within a few cycles.
  std::array<std::uint64_t, kWaveWidth> got{};
  LaneMask total_arrived = 0;
  (void)dev.launch(4, [&](Wave& w) -> Kernel<void> {
    if (w.cu_id() != 3) co_return;
    WaveQueueState st{};
    st.hungry = 0b11;
    for (int tries = 0; tries < 10 && st.hungry; ++tries) {
      co_await q.acquire_slots(w, st);
    }
    total_arrived = co_await q.check_arrival(w, st, got);
  });
  EXPECT_EQ(std::popcount(total_arrived), 2);
  EXPECT_EQ(got[0], 42u);
  EXPECT_EQ(got[1], 43u);
}

TEST(DistributedQueueTest, AllDoneSumsEveryRear) {
  Device dev(test_config(4, 1));
  DistributedQueue q(dev, 1024, 4);
  q.seed(dev, std::vector<std::uint64_t>{1, 2, 3});
  bool before = true, after = false;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    before = co_await q.all_done(w);
    co_await q.report_complete(w, 3);
    after = co_await q.all_done(w);
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(DistributedQueueTest, SeedBeyondSubQueueThrows) {
  Device dev(test_config(4, 1));
  DistributedQueue q(dev, 16, 4);  // 4 slots per sub-queue
  const std::vector<std::uint64_t> many(5, 1);
  EXPECT_THROW(q.seed(dev, many), simt::SimError);
}

// ---- End-to-end: the PT driver and BFS run on the new schedulers ----

class ExtVariantE2E : public ::testing::TestWithParam<QueueVariant> {};

TEST_P(ExtVariantE2E, TreeConservationThroughPtDriver) {
  Device dev(test_config(4, 2));
  auto queue = make_scheduler(dev, GetParam(), 1 << 14);
  std::uint64_t next_id = 1, visits = 0;
  const std::vector<std::uint64_t> seeds{0};
  const auto run = run_persistent_tasks(
      dev, *queue, seeds, [&](std::uint64_t token, const auto& emit) {
        ++visits;
        if ((token & 0xff) < 5) {
          for (int i = 0; i < 3; ++i) emit((next_id++ << 8) | ((token & 0xff) + 1));
        }
      });
  EXPECT_FALSE(run.aborted) << run.abort_reason;
  // Complete ternary tree of depth 5.
  EXPECT_EQ(visits, (std::uint64_t{243} * 3 - 1) / 2);
  EXPECT_EQ(run.stats.user[kTasksProcessed], visits);
}

TEST_P(ExtVariantE2E, BfsMatchesReference) {
  const graph::Graph g = graph::rodinia_random({.n_vertices = 2000, .seed = 17});
  const auto ref = graph::bfs_levels(g, 0);
  bfs::PtBfsOptions opt;
  opt.variant = GetParam();
  const bfs::BfsResult result = bfs::run_pt_bfs(test_config(), g, 0, opt);
  ASSERT_FALSE(result.run.aborted) << result.run.abort_reason;
  EXPECT_TRUE(bfs::matches_reference(result.levels, ref))
      << bfs::first_mismatch(result.levels, ref);
}

TEST_P(ExtVariantE2E, DeepGraphBfs) {
  // LIFO processing order stresses label correcting the hardest.
  const graph::Graph g = graph::road_network({.n_vertices = 1500, .seed = 23});
  const auto ref = graph::bfs_levels(g, 0);
  bfs::PtBfsOptions opt;
  opt.variant = GetParam();
  const bfs::BfsResult result = bfs::run_pt_bfs(test_config(), g, 0, opt);
  ASSERT_FALSE(result.run.aborted) << result.run.abort_reason;
  EXPECT_TRUE(bfs::matches_reference(result.levels, ref))
      << bfs::first_mismatch(result.levels, ref);
}

INSTANTIATE_TEST_SUITE_P(Ext, ExtVariantE2E,
                         ::testing::Values(QueueVariant::kStack,
                                           QueueVariant::kDistrib),
                         [](const auto& i) {
                           return i.param == QueueVariant::kStack
                                      ? std::string("Stack")
                                      : std::string("Distrib");
                         });

}  // namespace
}  // namespace scq
