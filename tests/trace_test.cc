// Tests for the execution tracer: event capture during kernel runs,
// bounded capacity, and Chrome trace JSON rendering.
#include <gtest/gtest.h>

#include "sim/device.h"
#include "sim/trace.h"

namespace simt {
namespace {

DeviceConfig cfg() {
  DeviceConfig c;
  c.num_cus = 2;
  c.waves_per_cu = 1;
  c.mem_latency = 100;
  c.atomic_latency = 50;
  c.atomic_service = 4;
  c.lds_latency = 8;
  c.issue_cost = 2;
  c.kernel_launch_overhead = 1000;
  return c;
}

TEST(TraceTest, RecordsOneSlicePerOperation) {
  Device dev(cfg());
  TraceRecorder trace;
  dev.attach_tracer(&trace);
  const Buffer b = dev.alloc(4);
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    co_await w.compute(10);
    co_await w.store(b.at(0), 1);
    (void)co_await w.load(b.at(0));
    (void)co_await w.atomic_add(b.at(1), 1);
    co_await w.lds_ops(3);
    co_await w.idle(50);
  });
  ASSERT_EQ(trace.events().size(), 6u);
  EXPECT_EQ(trace.events()[0].op, TraceOp::kCompute);
  EXPECT_EQ(trace.events()[1].op, TraceOp::kStore);
  EXPECT_EQ(trace.events()[2].op, TraceOp::kLoad);
  EXPECT_EQ(trace.events()[3].op, TraceOp::kAtomic);
  EXPECT_EQ(trace.events()[4].op, TraceOp::kLds);
  EXPECT_EQ(trace.events()[5].op, TraceOp::kIdle);
  // Slices are contiguous in wave-local time and non-decreasing.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_GE(trace.events()[i].begin, trace.events()[i - 1].end);
  }
  EXPECT_EQ(trace.events()[0].begin, 1000u) << "starts after launch overhead";
}

TEST(TraceTest, IdentifiesCuAndWorkgroup) {
  Device dev(cfg());
  TraceRecorder trace;
  dev.attach_tracer(&trace);
  (void)dev.launch(2, [&](Wave& w) -> Kernel<void> {
    co_await w.compute(5);
  });
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_NE(trace.events()[0].cu, trace.events()[1].cu)
      << "workgroups spread across CUs";
  EXPECT_NE(trace.events()[0].workgroup, trace.events()[1].workgroup);
}

TEST(TraceTest, CapacityBoundsRecording) {
  Device dev(cfg());
  TraceRecorder trace(4);
  dev.attach_tracer(&trace);
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    for (int i = 0; i < 10; ++i) co_await w.compute(1);
  });
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceTest, NoTracerNoCost) {
  Device dev(cfg());
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> { co_await w.compute(1); });
  EXPECT_EQ(dev.tracer(), nullptr);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceRecorder trace;
  trace.record({100, 150, 1, 2, 3, TraceOp::kAtomic});
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"atomic\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"wg3\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceTest, WriteToFile) {
  TraceRecorder trace;
  trace.record({0, 1, 0, 0, 0, TraceOp::kCompute});
  const std::string path = ::testing::TempDir() + "/scq_trace.json";
  ASSERT_TRUE(trace.write_chrome_json(path));
  EXPECT_FALSE(trace.write_chrome_json("/nonexistent-dir/x.json"));
}

TEST(TraceTest, CounterEventsRenderAsCounterTracks) {
  TraceRecorder trace;
  trace.record_counter({100, "queue.occupancy", 42.0});
  trace.record_counter({200, "queue.occupancy", 17.5});
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue.occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":17.5}"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.counters().empty());
}

TEST(TraceTest, CounterNamesAreJsonEscaped) {
  TraceRecorder trace;
  trace.record_counter({0, "odd\"na\\me\n", 1.0});
  const std::string json = trace.to_chrome_json();
  // Quote and backslash get escaped; control characters are blanked.
  EXPECT_NE(json.find("odd\\\"na\\\\me "), std::string::npos);
}

TEST(TraceTest, CounterCapacityBoundsRecording) {
  TraceRecorder trace(2);
  for (int i = 0; i < 5; ++i) {
    trace.record_counter({static_cast<Cycle>(i), "c", 1.0});
  }
  EXPECT_EQ(trace.counters().size(), 2u);
  EXPECT_EQ(trace.dropped_counters(), 3u);
}

TEST(TraceTest, DroppedMetadataRecordIsAlwaysPresent) {
  TraceRecorder complete;
  complete.record({0, 1, 0, 0, 0, TraceOp::kCompute});
  EXPECT_NE(complete.to_chrome_json().find(
                "\"name\":\"dropped\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(complete.to_chrome_json().find(
                "\"slices\":0,\"counters\":0,\"flows\":0"),
            std::string::npos);

  TraceRecorder truncated(1);
  truncated.record({0, 1, 0, 0, 0, TraceOp::kCompute});
  truncated.record({1, 2, 0, 0, 0, TraceOp::kCompute});
  truncated.record_counter({0, "c", 1.0});
  truncated.record_counter({1, "c", 2.0});
  truncated.record_flow({0, 7, true, 0, 0});
  truncated.record_flow({1, 7, false, 0, 0});
  EXPECT_NE(truncated.to_chrome_json().find(
                "\"slices\":1,\"counters\":1,\"flows\":1"),
            std::string::npos)
      << "truncation is reported, not silent";
  EXPECT_EQ(truncated.total_dropped(), 3u);
}

TEST(TraceTest, OpNames) {
  EXPECT_STREQ(to_string(TraceOp::kVecAtomic), "vatomic");
  EXPECT_STREQ(to_string(TraceOp::kVecLoad), "vload");
  EXPECT_STREQ(to_string(TraceOp::kIdle), "idle");
}

}  // namespace
}  // namespace simt
