// Golden-structure tests for the self-contained HTML run report: the
// seven sections are always present (with explicit empty states), the
// document inlines everything (no external asset references), data
// renders as SVG sparklines/heatmap cells, long runs decimate with a
// visible "showing N of M" note, HTML metacharacters are escaped, and
// rendering is a deterministic function of the data.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/html_report.h"

namespace scq::util {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Every report — even an empty one — carries the same section skeleton,
// so goldens and CI artifact checks can key on stable ids.
void expect_golden_structure(const std::string& html) {
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  for (const char* id : {"id=\"meta\"", "id=\"series\"", "id=\"heatmap\"",
                         "id=\"attribution\"", "id=\"taskstats\"",
                         "id=\"postmortem\"", "id=\"profiler\""}) {
    EXPECT_EQ(count_occurrences(html, id), 1u) << id;
  }
  // Self-contained: styles inline, no external fetches of any kind.
  EXPECT_NE(html.find("<style>"), std::string::npos);
  for (const char* external : {"<script", "<link", "src=", "@import", "url("}) {
    EXPECT_EQ(html.find(external), std::string::npos)
        << "external reference leaked: " << external;
  }
}

TEST(HtmlReportTest, EmptyReportKeepsGoldenStructure) {
  const std::string html = HtmlReportBuilder{}.render();
  expect_golden_structure(html);
  // Each data-less section states its emptiness instead of vanishing.
  EXPECT_GE(count_occurrences(html, "class=\"empty\""), 6u);
  EXPECT_NE(html.find("no windowed series recorded"), std::string::npos);
  EXPECT_NE(html.find("no abort recorded"), std::string::npos);
}

HtmlReportBuilder populated_builder() {
  HtmlReportBuilder b;
  b.set_title("fig1 <run> & report");
  b.add_meta("device", "Fiji");
  b.add_meta("graph \"g\"", "kary <16>");
  b.add_series({"queue.occupancy",
                {{0.0, 3.0}, {4096.0, 9.0}, {8192.0, 5.0}}});
  b.set_heatmap({"Occupancy heatmap",
                 {"dev0", "dev1"},
                 {0.0, 1.0, 2.0},
                 {{1.0, 2.0, 3.0}, {4.0, 5.0}}});  // ragged second row
  b.set_attribution({"Critical-path attribution",
                     {"op", "cycles"},
                     {{"atomic", "120"}, {"load <vec>", "80"}}});
  b.set_task_stats({"Task framework statistics",
                    {"workload", "spawns", "respawns"},
                    {{"cc", "812", "0"}, {"coloring", "440", "37"}}});
  b.set_profiler({{"heap", 0.25}, {"memory model", 0.5}},
                 {{"events/sec", "1.2e6"}});
  b.set_postmortem("== post-mortem ==\nreason: queue <full>\n");
  return b;
}

TEST(HtmlReportTest, PopulatedSectionsRenderSvgAndTables) {
  const std::string html = populated_builder().render();
  expect_golden_structure(html);
  EXPECT_EQ(html.find("class=\"empty\""), std::string::npos)
      << "every section has data";

  // Sparkline: one polyline, per-point hover circles (sparse series),
  // and the values table for exact reads.
  EXPECT_EQ(count_occurrences(html, "<polyline"), 1u);
  EXPECT_EQ(count_occurrences(html, "<circle"), 3u);
  EXPECT_NE(html.find("3 windows"), std::string::npos);
  EXPECT_NE(html.find("<details><summary>values</summary>"), std::string::npos);

  // Heatmap: 3 + 2 cells (the ragged row simply renders fewer), row
  // labels, and time axis endpoints.
  EXPECT_EQ(count_occurrences(html, "<rect"), 5u);
  EXPECT_NE(html.find(">dev1</text>"), std::string::npos);
  EXPECT_NE(html.find(">t=0</text>"), std::string::npos);

  // Post-mortem text renders verbatim (escaped) in a monospace block.
  EXPECT_NE(html.find("<pre class=\"postmortem\">== post-mortem =="),
            std::string::npos);
  EXPECT_NE(html.find("reason: queue &lt;full&gt;"), std::string::npos);

  // Attribution table, task-stats table, and profiler bars.
  EXPECT_NE(html.find("<td>atomic</td><td>120</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>coloring</td><td>440</td><td>37</td>"),
            std::string::npos);
  EXPECT_EQ(count_occurrences(html, "class=\"bar-row\""), 2u);
  EXPECT_NE(html.find("50.0%"), std::string::npos);
  EXPECT_NE(html.find("events/sec"), std::string::npos);
}

TEST(HtmlReportTest, EscapesHtmlMetacharacters) {
  const std::string html = populated_builder().render();
  EXPECT_NE(html.find("fig1 &lt;run&gt; &amp; report"), std::string::npos);
  EXPECT_NE(html.find("graph &quot;g&quot;"), std::string::npos);
  EXPECT_NE(html.find("load &lt;vec&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<run>"), std::string::npos);
}

TEST(HtmlReportTest, RenderIsDeterministic) {
  EXPECT_EQ(populated_builder().render(), populated_builder().render());
}

TEST(HtmlReportTest, LongSeriesDecimatesPoints) {
  HtmlReportBuilder b;
  ReportSeries s;
  s.name = "long";
  for (int i = 0; i < 10000; ++i) {
    s.points.emplace_back(i, i % 17);
  }
  b.add_series(std::move(s));
  const std::string html = b.render();
  // The polyline carries at most 256 decimated points; hover circles
  // are suppressed at this density. The full count is still reported
  // and the values table caps with an explicit remainder note.
  EXPECT_EQ(count_occurrences(html, "<circle"), 0u);
  EXPECT_LE(count_occurrences(html, ","), 10000u);
  EXPECT_NE(html.find("10000 windows"), std::string::npos);
  EXPECT_NE(html.find("more (see CSV artifact)"), std::string::npos);
}

TEST(HtmlReportTest, WideHeatmapDecimatesColumnsVisibly) {
  ReportHeatmap hm;
  hm.title = "wide";
  hm.rows = {"dev0"};
  std::vector<double> row;
  for (int c = 0; c < 1000; ++c) {
    hm.col_starts.push_back(c);
    row.push_back(c % 7);
  }
  hm.values.push_back(std::move(row));
  HtmlReportBuilder b;
  b.set_heatmap(std::move(hm));
  const std::string html = b.render();
  EXPECT_EQ(count_occurrences(html, "<rect"), 160u) << "column cap";
  EXPECT_NE(html.find("showing 160 of 1000 columns"), std::string::npos);
  // First and last columns always survive decimation.
  EXPECT_NE(html.find("t=0:"), std::string::npos);
  EXPECT_NE(html.find("t=999:"), std::string::npos);
}

TEST(HtmlReportTest, NarrowHeatmapShowsEveryColumn) {
  ReportHeatmap hm;
  hm.rows = {"dev0"};
  hm.col_starts = {0.0, 1.0};
  hm.values = {{1.0, 2.0}};
  HtmlReportBuilder b;
  b.set_heatmap(std::move(hm));
  const std::string html = b.render();
  EXPECT_EQ(count_occurrences(html, "<rect"), 2u);
  EXPECT_EQ(html.find("columns</span>"), std::string::npos)
      << "no decimation note when nothing was dropped";
}

TEST(HtmlReportTest, WriteReportsFilesystemFailure) {
  const HtmlReportBuilder b;
  const std::string path = ::testing::TempDir() + "/scq_report.html";
  ASSERT_TRUE(b.write(path));
  EXPECT_FALSE(b.write("/nonexistent-dir/report.html"));
}

}  // namespace
}  // namespace scq::util
