// Tests for the windowed time-series store: window-close arithmetic for
// the three source kinds (gauge, counter delta, accumulator), ring-wrap
// oldest-overwrite with drop accounting, merge/prefix semantics used by
// the cluster runtime, Perfetto counter mirroring, and a device-driven
// seed-0 bit-exact replay of the JSON export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/telemetry.h"
#include "sim/timeseries.h"
#include "sim/trace.h"
#include "util/json.h"

namespace simt {
namespace {

using scq::util::JsonValue;
using scq::util::parse_json;

TimeSeriesStore::Options small_opts(Cycle window = 100,
                                    std::size_t max_windows = 8) {
  return {.window_cycles = window, .max_windows = max_windows};
}

// ---- Window close arithmetic -------------------------------------------

TEST(TimeSeriesTest, GaugeSamplesOncePerWindowAtClose) {
  TimeSeriesStore ts(small_opts());
  ts.register_gauge("g", [](Cycle now) { return now; });
  // Dense advance across three windows: one sample per window, stamped
  // with the window's start, valued at the close.
  for (Cycle c = 0; c <= 320; ++c) ts.on_advance(c);
  const auto win = ts.series("g");
  ASSERT_EQ(win.size(), 3u) << "[0,100) [100,200) [200,300) closed";
  for (std::size_t i = 0; i < win.size(); ++i) {
    EXPECT_EQ(win[i].start, i * 100);
    EXPECT_EQ(win[i].value, (i + 1) * 100) << "gauge sampled at window end";
  }
}

TEST(TimeSeriesTest, SparseAdvanceClosesEveryCrossedWindow) {
  // Discrete-event time jumps several windows at once; every crossed
  // window must still close (unlike the sampler, which records one
  // point per period at most).
  TimeSeriesStore ts(small_opts());
  ts.register_gauge("g", [](Cycle) { return 7; });
  ts.on_advance(450);
  const auto win = ts.series("g");
  ASSERT_EQ(win.size(), 4u);
  EXPECT_EQ(win[0].start, 0u);
  EXPECT_EQ(win[3].start, 300u);
}

TEST(TimeSeriesTest, CounterRecordsPerWindowDelta) {
  std::uint64_t cum = 5;  // non-zero at registration
  TimeSeriesStore ts(small_opts());
  ts.register_counter("c", [&cum](Cycle) { return cum; });
  cum = 12;
  ts.on_advance(100);  // closes [0,100): delta from registration = 7
  cum = 12;
  ts.on_advance(200);  // flat window: delta 0 still recorded
  cum = 40;
  ts.on_advance(300);
  const auto win = ts.series("c");
  ASSERT_EQ(win.size(), 3u);
  EXPECT_EQ(win[0].value, 7u)
      << "first delta measured from the value at registration, not 0";
  EXPECT_EQ(win[1].value, 0u) << "counters record every window, even flat";
  EXPECT_EQ(win[2].value, 28u);
}

TEST(TimeSeriesTest, AccumulatorSumsWithinWindowAndSkipsIdleWindows) {
  TimeSeriesStore ts(small_opts());
  ts.add("stalls", 3);
  ts.add("stalls", 4);
  ts.on_advance(100);  // closes [0,100) with 7
  ts.on_advance(250);  // [100,200) had no adds: not recorded
  ts.add("stalls", 1);
  ts.flush(260);  // partial window [200,300) flushes the pending add
  const auto win = ts.series("stalls");
  ASSERT_EQ(win.size(), 2u) << "event-shaped series skip empty windows";
  EXPECT_EQ(win[0].start, 0u);
  EXPECT_EQ(win[0].value, 7u);
  EXPECT_EQ(win[1].start, 200u);
  EXPECT_EQ(win[1].value, 1u);
}

TEST(TimeSeriesTest, FlushClosesPartialTailOnce) {
  TimeSeriesStore ts(small_opts());
  ts.register_gauge("g", [](Cycle now) { return now; });
  ts.on_advance(150);
  ts.flush(150);  // closes the partial [100,150)
  ASSERT_EQ(ts.series("g").size(), 2u);
  EXPECT_EQ(ts.series("g")[1].start, 100u);
  EXPECT_EQ(ts.series("g")[1].value, 150u);
  // The clock realigned past the flushed tail: advancing within the
  // next window closes nothing extra.
  ts.on_advance(190);
  EXPECT_EQ(ts.series("g").size(), 2u);
}

TEST(TimeSeriesTest, ClearProbesRestartsWindowClock) {
  TimeSeriesStore ts(small_opts());
  ts.register_gauge("a", [](Cycle) { return 1; });
  ts.on_advance(950);
  const std::size_t recorded = ts.series("a").size();
  ts.clear_probes();  // next run's clock starts at 0 again
  ts.register_gauge("b", [](Cycle) { return 2; });
  ts.on_advance(100);
  EXPECT_EQ(ts.series("b").size(), 1u)
      << "the new run's first window must not be masked by the old clock";
  EXPECT_EQ(ts.series("a").size(), recorded) << "recorded windows survive";
}

// ---- Ring bounds and drop accounting -----------------------------------

TEST(TimeSeriesTest, RingOverwritesOldestAndCountsDrops) {
  TimeSeriesStore ts(small_opts(100, 4));
  ts.register_gauge("g", [](Cycle now) { return now / 100; });
  // Close 10 windows into a 4-slot ring: 6 oldest overwritten.
  ts.on_advance(1000);
  const auto win = ts.series("g");
  ASSERT_EQ(win.size(), 4u);
  EXPECT_EQ(ts.dropped_windows(), 6u);
  // Chronological, oldest *surviving* first: windows 6..9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(win[i].start, (6 + i) * 100);
    EXPECT_EQ(win[i].value, 7 + i);
  }
}

TEST(TimeSeriesTest, RecordWindowAppendsDirectly) {
  // Host-driven series (cluster router supersteps) bypass the clock.
  TimeSeriesStore ts(small_opts(100, 2));
  ts.record_window("router.stolen", 0, 11);
  ts.record_window("router.stolen", 1, 22);
  ts.record_window("router.stolen", 2, 33);
  const auto win = ts.series("router.stolen");
  ASSERT_EQ(win.size(), 2u);
  EXPECT_EQ(win[0].value, 22u);
  EXPECT_EQ(win[1].value, 33u);
  EXPECT_EQ(ts.dropped_windows(), 1u) << "ring bounds apply to direct appends";
}

TEST(TimeSeriesTest, MergeAppendsChronologicallyAndAccumulatesDrops) {
  TimeSeriesStore a(small_opts(100, 8));
  TimeSeriesStore b(small_opts(100, 2));
  a.record_window("s", 0, 1);
  b.record_window("s", 100, 2);
  b.record_window("s", 200, 3);
  b.record_window("s", 300, 4);  // drops the 100-window in b
  b.record_window("only_b", 0, 9);
  a.merge_from(b);
  const auto win = a.series("s");
  ASSERT_EQ(win.size(), 3u);
  EXPECT_EQ(win[0].start, 0u);
  EXPECT_EQ(win[1].start, 200u) << "b's surviving windows append in order";
  EXPECT_EQ(win[2].start, 300u);
  ASSERT_EQ(a.series("only_b").size(), 1u) << "new series are created";
  EXPECT_EQ(a.dropped_windows(), 1u) << "source drop counts carry over";
}

// ---- Cluster-style prefixed merge through Telemetry ---------------------

TEST(TimeSeriesTest, DevicePrefixesKeepMergedSeriesApart) {
  // The cluster runtime gives each device's telemetry a "dev<N>."
  // prefix, then folds all of them into one sink: same probe name, no
  // collision, per-device series intact.
  Telemetry sink;
  Telemetry dev0, dev1;
  dev0.set_prefix("dev0.");
  dev1.set_prefix("dev1.");
  for (int s = 0; s < 3; ++s) {
    dev0.record_window("superstep.occupancy", s, 10 + s);
    dev1.record_window("superstep.occupancy", s, 20 + s);
  }
  sink.merge_from(dev0);
  sink.merge_from(dev1);

  const auto d0 = sink.windows().series("dev0.superstep.occupancy");
  const auto d1 = sink.windows().series("dev1.superstep.occupancy");
  ASSERT_EQ(d0.size(), 3u);
  ASSERT_EQ(d1.size(), 3u);
  EXPECT_EQ(d0[2].value, 12u);
  EXPECT_EQ(d1[2].value, 22u);
  EXPECT_TRUE(sink.windows().series("superstep.occupancy").empty())
      << "nothing may land under the unprefixed name";
}

TEST(TimeSeriesTest, TelemetryPrefixAppliesToEveryWindowSource) {
  Telemetry t;
  t.set_prefix("dev3.");
  t.register_window_gauge("g", [](Cycle) { return 1; });
  t.register_window_counter("c", [](Cycle) { return 2; });
  t.window_add("a", 5);
  t.record_window("r", 0, 6);
  t.flush_windows(50);
  const auto names = t.windows().series_names();
  for (const std::string& n : names) {
    EXPECT_EQ(n.rfind("dev3.", 0), 0u) << "unprefixed series leaked: " << n;
  }
  EXPECT_EQ(names.size(), 4u);
}

// ---- Perfetto mirroring -------------------------------------------------

TEST(TimeSeriesTest, MirrorsClosedWindowsAsPrefixedCounterTracks) {
  TraceRecorder trace;
  TimeSeriesStore ts(small_opts());
  ts.mirror_counters_to(&trace);
  ts.register_gauge("queue.occupancy", [](Cycle now) { return now; });
  ts.on_advance(250);

  const auto parsed = parse_json(trace.to_chrome_json());
  ASSERT_TRUE(parsed.has_value());
  std::vector<const JsonValue*> counters;
  for (const JsonValue& e : parsed->at("traceEvents").array) {
    if (e.at("ph").str == "C") counters.push_back(&e);
  }
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0]->at("name").str, "win.queue.occupancy")
      << "window tracks are namespaced apart from the sampled series";
  EXPECT_EQ(counters[1]->at("ts").number, 100.0)
      << "the track point sits at the window start";
  EXPECT_EQ(counters[1]->at("args").at("value").number, 200.0);
}

TEST(TimeSeriesTest, DroppedWindowsReachTraceDroppedMetadata) {
  // Ring-bound loss is noted on the recorder so a truncated timeline is
  // detectable from the trace file alone.
  TraceRecorder trace;
  trace.note_dropped_windows(17);
  const auto parsed = parse_json(trace.to_chrome_json());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* dropped = nullptr;
  for (const JsonValue& e : parsed->at("traceEvents").array) {
    if (e.at("ph").str == "M" && e.at("name").str == "dropped") dropped = &e;
  }
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->at("args").at("windows").number, 17.0);
}

// ---- Exports ------------------------------------------------------------

TEST(TimeSeriesTest, JsonAndCsvRoundTrip) {
  TimeSeriesStore ts(small_opts(100, 4));
  ts.add("weird \"name\"", 3);
  ts.on_advance(120);
  const auto parsed = parse_json(ts.to_json());
  ASSERT_TRUE(parsed.has_value()) << "windows export must be valid JSON";
  EXPECT_EQ(parsed->at("window_cycles").number, 100.0);
  EXPECT_EQ(parsed->at("dropped_windows").number, 0.0);
  const JsonValue& series = parsed->at("series");
  ASSERT_TRUE(series.has("weird \"name\"")) << "escaping must round-trip";
  ASSERT_EQ(series.at("weird \"name\"").array.size(), 1u);
  EXPECT_EQ(series.at("weird \"name\"").array[0].array[1].number, 3.0);

  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("series,window_start,value"), std::string::npos);
  EXPECT_NE(csv.find(",0,3"), std::string::npos);
}

// ---- Device-driven bit-exact replay -------------------------------------

DeviceConfig replay_cfg() {
  DeviceConfig c;
  c.num_cus = 2;
  c.waves_per_cu = 2;
  c.mem_latency = 100;
  c.atomic_latency = 40;
  c.atomic_service = 4;
  c.lds_latency = 8;
  c.issue_cost = 2;
  c.kernel_launch_overhead = 500;
  return c;
}

std::string run_and_export_windows() {
  Device dev(replay_cfg());
  const Buffer data = dev.alloc(64);
  Telemetry t(Telemetry::Options{.sample_period = 256, .window_cycles = 512});
  t.register_window_gauge("tick", [](Cycle now) { return now; });
  t.register_window_counter("compute",
                            [&dev](Cycle) { return dev.stats().compute_cycles; });
  dev.attach_telemetry(&t);
  (void)dev.launch(2, [&](Wave& w) -> Kernel<void> {
    for (int i = 0; i < 8; ++i) {
      co_await w.compute(100 + 10 * (i % 3));
      co_await w.load(data.at(static_cast<std::uint64_t>(i)));
    }
  });
  return t.windows().to_json();
}

TEST(TimeSeriesTest, Seed0ReplayIsBitExact) {
  // The windowed layer is a pure function of the event schedule: two
  // identical seed-0 runs export byte-identical window JSON.
  const std::string first = run_and_export_windows();
  const std::string second = run_and_export_windows();
  EXPECT_GT(first.find("\"tick\""), 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace simt
