// End-to-end black-box tests: the forced failure scenarios must produce
// deterministic dumps, and the post-mortem analyzer must name the true
// blocking wave / band in each — while refusing to analyze a tampered
// document.
#include "util/postmortem.h"

#include <gtest/gtest.h>

#include <string>

#include "support/forced_failures.h"
#include "util/json.h"

namespace {

using scq::fuzz::ForcedDump;
using scq::util::JsonValue;
using scq::util::PostmortemReport;

bool any_contains(const std::vector<std::string>& lines,
                  const std::string& needle) {
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(PostmortemTest, ForcedDumpsAreDeterministic) {
  const ForcedDump p1 = scq::fuzz::forced_publish_deadlock_dump();
  const ForcedDump p2 = scq::fuzz::forced_publish_deadlock_dump();
  EXPECT_EQ(p1.reason, p2.reason);
  EXPECT_EQ(p1.json, p2.json);  // byte-identical across reruns

  const ForcedDump c1 = scq::fuzz::forced_cluster_stall_dump();
  const ForcedDump c2 = scq::fuzz::forced_cluster_stall_dump();
  EXPECT_EQ(c1.reason, c2.reason);
  EXPECT_EQ(c1.json, c2.json);
}

TEST(PostmortemTest, PublishDeadlockReportNamesBlockedWaveAndTicket) {
  const ForcedDump forced = scq::fuzz::forced_publish_deadlock_dump();
  EXPECT_NE(forced.reason.find("publish"), std::string::npos) << forced.reason;

  const auto doc = scq::util::parse_json(forced.json);
  ASSERT_TRUE(doc.has_value());
  const PostmortemReport report = scq::util::analyze_black_box(*doc);
  ASSERT_TRUE(report.valid) << report.validation_error;
  EXPECT_EQ(report.reason, forced.reason);

  // The scenario: a 4-slot ring seeded full, wave 0 parked on ticket 4
  // whose slot is held by the never-claimed ticket 0.
  EXPECT_TRUE(any_contains(report.wait_edges,
                           "wave 0 parked on ticket 4"))
      << report.render();
  EXPECT_TRUE(any_contains(report.verdicts,
                           "by ticket 0 — written but never claimed"))
      << report.render();
  EXPECT_TRUE(any_contains(report.verdicts, "publish backpressure deadlock"))
      << report.render();

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("== post-mortem =="), std::string::npos);
  EXPECT_NE(rendered.find("-- wait-for graph --"), std::string::npos);
  EXPECT_NE(rendered.find("-- verdicts --"), std::string::npos);
}

TEST(PostmortemTest, ClusterStallReportNamesDeviceAndBand) {
  const ForcedDump forced = scq::fuzz::forced_cluster_stall_dump();
  EXPECT_NE(forced.reason.find("stall"), std::string::npos) << forced.reason;
  // Satellite: stall abort reasons carry per-device occupancy detail.
  EXPECT_NE(forced.reason.find("occ="), std::string::npos) << forced.reason;

  const auto doc = scq::util::parse_json(forced.json);
  ASSERT_TRUE(doc.has_value());
  const PostmortemReport report = scq::util::analyze_black_box(*doc);
  ASSERT_TRUE(report.valid) << report.validation_error;

  // One token seeded on device 0, nothing ever claims it: band 0 of
  // dev0 holds the orphaned work (rear=1, completed=0).
  EXPECT_TRUE(any_contains(report.verdicts, "dev0 band 0: 1 incomplete"))
      << report.render();
  EXPECT_FALSE(any_contains(report.verdicts, "dev1 band 0: "))
      << report.render();
}

TEST(PostmortemTest, MutationKillTamperedDumpFailsValidation) {
  const ForcedDump forced = scq::fuzz::forced_publish_deadlock_dump();
  const auto doc = scq::util::parse_json(forced.json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(scq::util::analyze_black_box(*doc).valid);

  // completed > rear violates the queue protocol.
  {
    JsonValue tampered = *doc;
    JsonValue& band =
        tampered.object["devices"].array[0].object["queue"].object["bands"]
            .array[0];
    band.object["completed"].number = band.object["rear"].number + 1;
    const PostmortemReport r = scq::util::analyze_black_box(tampered);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.validation_error.find("completed exceeds rear"),
              std::string::npos)
        << r.validation_error;
    EXPECT_TRUE(r.verdicts.empty());  // no confident verdict from garbage
    EXPECT_NE(r.render().find("INVALID DUMP"), std::string::npos);
  }

  // Occupancy must equal rear - front.
  {
    JsonValue tampered = *doc;
    tampered.object["devices"].array[0].object["queue"].object["bands"]
        .array[0].object["occupancy"].number += 1;
    const PostmortemReport r = scq::util::analyze_black_box(tampered);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.validation_error.find("occupancy mismatch"),
              std::string::npos);
  }

  // A foreign event kind means the document was not written by this
  // recorder version.
  {
    JsonValue tampered = *doc;
    JsonValue& events =
        tampered.object["devices"].array[0].object["recorder"]
            .object["events"];
    ASSERT_FALSE(events.array.empty());
    events.array[0].object["kind"].str = "teleport";
    const PostmortemReport r = scq::util::analyze_black_box(tampered);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.validation_error.find("unknown event kind"),
              std::string::npos);
  }

  // Not a black box at all.
  {
    JsonValue tampered = *doc;
    tampered.object["blackbox"].number = 2;
    EXPECT_FALSE(scq::util::analyze_black_box(tampered).valid);
  }
}

}  // namespace
