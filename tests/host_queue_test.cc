// Tests for the host-side queues: single-threaded semantics, the
// claim/poll monitor API, wraparound, and real-thread stress invariants
// (token-sum conservation, exactly-once delivery).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/host_queue.h"

namespace scq {
namespace {

TEST(HostBrokerQueueTest, CapacityRoundsUpToPowerOfTwo) {
  HostBrokerQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  HostBrokerQueue<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(HostBrokerQueueTest, FifoSingleThread) {
  HostBrokerQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.enqueue(i));
  EXPECT_EQ(q.size_approx(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(HostBrokerQueueTest, BatchEnqueueDequeue) {
  HostBrokerQueue<int> q(16);
  const std::vector<int> in{1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(q.enqueue_batch(in));
  std::vector<int> out(7);
  ASSERT_TRUE(q.dequeue_batch(out));
  EXPECT_EQ(out, in);
}

TEST(HostBrokerQueueTest, WraparoundManyTimes) {
  HostBrokerQueue<int> q(4);  // tiny ring, forced wraps
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.enqueue(round));
    ASSERT_TRUE(q.enqueue(round + 1000));
    EXPECT_EQ(q.dequeue().value(), round);
    EXPECT_EQ(q.dequeue().value(), round + 1000);
  }
}

TEST(HostBrokerQueueTest, TryDequeueEmptyReturnsNothing) {
  HostBrokerQueue<int> q(8);
  EXPECT_FALSE(q.try_dequeue().has_value());
  ASSERT_TRUE(q.enqueue(42));
  EXPECT_EQ(q.try_dequeue().value(), 42);
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(HostBrokerQueueTest, TryEnqueueFullReturnsFalse) {
  HostBrokerQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(99));
  EXPECT_EQ(q.try_dequeue().value(), 0);
  EXPECT_TRUE(q.try_enqueue(99));
}

TEST(HostBrokerQueueTest, ClaimPollMonitorsArrival) {
  HostBrokerQueue<int> q(16);
  // Claim before any data exists: the retry-free "monitor a unique slot"
  // dequeue. Poll finds nothing, then everything after data arrives.
  auto ticket = q.claim_slots(3);
  std::vector<int> out(3);
  EXPECT_EQ(q.poll(ticket, out), 0u);
  ASSERT_TRUE(q.enqueue(7));
  EXPECT_EQ(q.poll(ticket, out), 1u);
  EXPECT_EQ(out[0], 7);
  const std::vector<int> more{8, 9};
  ASSERT_TRUE(q.enqueue_batch(more));
  EXPECT_EQ(q.poll(ticket, std::span<int>(out).subspan(1)), 2u);
  EXPECT_TRUE(ticket.done());
  EXPECT_EQ(out[1], 8);
  EXPECT_EQ(out[2], 9);
}

TEST(HostBrokerQueueTest, CloseWakesBlockedDequeue) {
  HostBrokerQueue<int> q(8);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto v = q.dequeue();  // blocks: queue empty
    EXPECT_FALSE(v.has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(HostBrokerQueueTest, CloseInterruptedBatchAbandonsTicketsDeterministically) {
  // Regression: close() racing an in-flight enqueue_batch used to
  // strand the batch's claimed-but-unpublished tickets — their
  // consumers spun on slots that would never fill. The interrupted
  // producer now abandons those tickets by moving each producer-ready
  // slot straight to the recycled state, which poll() reports as a dead
  // ticket.
  HostBrokerQueue<int> q(4);
  // Fill the ring, then consume ticket 1 out of order via the monitor
  // API so exactly one next-epoch slot is producer-ready at close time.
  ASSERT_TRUE(q.enqueue_batch(std::vector<int>{10, 11, 12, 13}));
  auto t0 = q.claim_slots(1);
  auto t1 = q.claim_slots(1);
  std::vector<int> out(1);
  ASSERT_EQ(q.poll(t1, out), 1u);
  EXPECT_EQ(out[0], 11);

  // This batch claims tickets 4 and 5; ticket 4's slot still holds the
  // unconsumed item 10, so the producer blocks there until close().
  std::atomic<bool> returned{false};
  bool ok = true;
  std::thread producer([&] {
    ok = q.enqueue_batch(std::vector<int>{100, 101});
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load()) << "producer should block on the full ring";
  q.close();
  producer.join();
  EXPECT_FALSE(ok);

  // Tickets 2 and 3: their data was published before the batch; still
  // consumable after close.
  auto t2 = q.claim_slots(1);
  ASSERT_EQ(q.poll(t2, out), 1u);
  EXPECT_EQ(out[0], 12);
  auto t3 = q.claim_slots(1);
  ASSERT_EQ(q.poll(t3, out), 1u);
  EXPECT_EQ(out[0], 13);
  // Ticket 4 was abandoned while its slot still held old data, so the
  // marker could not land; its consumer falls back to the closed flag.
  auto t4 = q.claim_slots(1);
  EXPECT_EQ(q.poll(t4, out), 0u);
  EXPECT_FALSE(t4.done());
  EXPECT_TRUE(q.closed());
  // Ticket 5's slot was producer-ready: the abandon marker landed and
  // poll() reports the ticket dead — deterministic, no spinning.
  auto t5 = q.claim_slots(1);
  EXPECT_EQ(q.poll(t5, out), 0u);
  EXPECT_TRUE(t5.dead);
  EXPECT_TRUE(t5.done());
  // Ticket 0 was never consumed; its data is intact and still readable.
  ASSERT_EQ(q.poll(t0, out), 1u);
  EXPECT_EQ(out[0], 10);
}

TEST(HostBrokerQueueTest, RacingCloseUnblocksEveryThread) {
  // Stress the close() race from every side: blocked producers, blocked
  // batch consumers and a poll-based monitor must all terminate (the
  // join *is* the assertion), and nothing is delivered twice.
  for (int iter = 0; iter < 10; ++iter) {
    HostBrokerQueue<int> q(64);
    std::atomic<int> produced{0};
    std::atomic<int> consumed{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 3; ++p) {
      threads.emplace_back([&] {
        const std::vector<int> batch(8, 1);
        while (q.enqueue_batch(batch)) {
          produced.fetch_add(8, std::memory_order_relaxed);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (q.dequeue().has_value()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    threads.emplace_back([&] {
      std::vector<int> out(4);
      auto ticket = q.claim_slots(4);
      for (;;) {
        consumed.fetch_add(static_cast<int>(q.poll(ticket, out)),
                           std::memory_order_relaxed);
        if (ticket.done()) {
          if (ticket.dead || q.closed()) break;
          ticket = q.claim_slots(4);
        } else if (q.closed()) {
          break;  // stranded ticket: the documented fallback
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    q.close();
    for (auto& t : threads) t.join();
    // Every delivery came from a published item; interrupted batches may
    // have published a prefix, hence the per-producer slack.
    EXPECT_LE(consumed.load(), produced.load() + 3 * 8);
  }
}

TEST(HostBrokerQueueTest, MpmcStressConservesTokens) {
  // N producers each push a disjoint range; M consumers drain. Every
  // value must be seen exactly once (checked via sum + per-value marks).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20'000;
  constexpr int kTotal = kProducers * kPerProducer;

  HostBrokerQueue<int> q(1024);
  std::vector<std::atomic<std::uint8_t>> seen(kTotal);
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<int> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        batch.push_back(p * kPerProducer + i);
        if (batch.size() == 16 || i + 1 == kPerProducer) {
          ASSERT_TRUE(q.enqueue_batch(batch));
          batch.clear();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        // Mix batch dequeues and single try-dequeues.
        if (auto v = q.try_dequeue()) {
          ASSERT_EQ(seen[*v].fetch_add(1), 0) << "duplicate delivery";
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

TEST(HostBrokerQueueTest, BatchClaimsAreContiguousUnderConcurrency) {
  // Two threads each claim batches; the union of claimed tickets must
  // partition [0, total) — i.e. one fetch_add per batch is linearizable.
  HostBrokerQueue<int> q(1 << 14);
  constexpr int kBatches = 1000;
  constexpr int kBatch = 5;
  std::vector<std::uint64_t> starts_a, starts_b;
  std::thread a([&] {
    for (int i = 0; i < kBatches; ++i) starts_a.push_back(q.claim_slots(kBatch).first);
  });
  std::thread b([&] {
    for (int i = 0; i < kBatches; ++i) starts_b.push_back(q.claim_slots(kBatch).first);
  });
  a.join();
  b.join();
  std::vector<std::uint64_t> all = starts_a;
  all.insert(all.end(), starts_b.begin(), starts_b.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i * kBatch) << "claims must tile the ticket space";
  }
}

// ---- HostCasQueue (BASE comparator) ----

TEST(HostCasQueueTest, FifoSingleThread) {
  HostCasQueue<int> q(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(8));  // full
  for (int i = 0; i < 8; ++i) EXPECT_EQ(q.try_dequeue().value(), i);
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(HostCasQueueTest, StressConservesAndCountsRetries) {
  constexpr int kThreads = 4;
  constexpr int kPer = 25'000;
  HostCasQueue<int> q(256);
  std::atomic<long long> sum_out{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        while (!q.try_enqueue(t * kPer + i)) std::this_thread::yield();
      }
    });
    threads.emplace_back([&] {
      while (consumed.load(std::memory_order_relaxed) < kThreads * kPer) {
        if (auto v = q.try_dequeue()) {
          sum_out.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const long long n = static_cast<long long>(kThreads) * kPer;
  EXPECT_EQ(sum_out.load(), n * (n - 1) / 2);
}

// Property sweep: broker queue conserves across capacities/batch sizes.
class BrokerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BrokerPropertyTest, ProducerConsumerPairConserves) {
  const auto [capacity, batch] = GetParam();
  HostBrokerQueue<std::uint64_t> q(static_cast<std::size_t>(capacity));
  constexpr std::uint64_t kCount = 50'000;

  std::thread producer([&] {
    std::vector<std::uint64_t> buf;
    for (std::uint64_t i = 0; i < kCount; ++i) {
      buf.push_back(i);
      if (buf.size() == static_cast<std::size_t>(batch) || i + 1 == kCount) {
        ASSERT_TRUE(q.enqueue_batch(buf));
        buf.clear();
      }
    }
  });

  std::uint64_t sum = 0, received = 0;
  std::vector<std::uint64_t> out(static_cast<std::size_t>(batch));
  while (received < kCount) {
    const std::size_t want =
        std::min<std::uint64_t>(out.size(), kCount - received);
    ASSERT_TRUE(q.dequeue_batch(std::span<std::uint64_t>(out).first(want)));
    for (std::size_t i = 0; i < want; ++i) sum += out[i];
    received += want;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BrokerPropertyTest,
                         ::testing::Combine(::testing::Values(4, 64, 4096),
                                            ::testing::Values(1, 7, 64)),
                         [](const auto& i) {
                           return "cap" + std::to_string(std::get<0>(i.param)) +
                                  "_batch" + std::to_string(std::get<1>(i.param));
                         });

}  // namespace
}  // namespace scq
