// Schedule-fuzzing harness tests (ctest label: fuzz).
//
// Three layers: the checker itself must catch injected mutations (both
// synthetic histories and tampered real ones), fuzz cases must be
// bit-exact replayable from their seed, and a sweep across queue
// variants x workloads x capacities x seeds must come back clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/queue.h"
#include "support/fuzz_harness.h"
#include "support/queue_checker.h"

namespace scq::fuzz {
namespace {

using simt::kHostActor;
using simt::OpRecord;
using simt::QueueOp;

OpRecord reserve(std::uint64_t ticket, std::uint64_t payload,
                 std::uint64_t capacity) {
  return {QueueOp::kEnqueueReserve, kHostActor, ticket, ticket % capacity,
          ticket / capacity, payload, 0};
}
OpRecord write(std::uint64_t ticket, std::uint64_t payload,
               std::uint64_t capacity) {
  return {QueueOp::kEnqueueWrite, kHostActor, ticket, ticket % capacity,
          ticket / capacity, payload, 0};
}
OpRecord claim(std::uint64_t ticket, std::uint64_t capacity) {
  return {QueueOp::kDequeueClaim, 0, ticket, ticket % capacity,
          ticket / capacity, 0, 0};
}
OpRecord deliver(std::uint64_t ticket, std::uint64_t payload,
                 std::uint64_t capacity) {
  return {QueueOp::kDequeueDeliver, 0, ticket, ticket % capacity,
          ticket / capacity, payload, 0};
}

// A clean two-ticket history: reserve/write/claim/deliver for 0 and 1.
std::vector<OpRecord> clean_history(std::uint64_t capacity) {
  return {reserve(0, 100, capacity), write(0, 100, capacity),
          reserve(1, 101, capacity), write(1, 101, capacity),
          claim(0, capacity),        deliver(0, 100, capacity),
          claim(1, capacity),        deliver(1, 101, capacity)};
}

bool same_record(const OpRecord& a, const OpRecord& b) {
  return a.op == b.op && a.actor == b.actor && a.ticket == b.ticket &&
         a.slot == b.slot && a.epoch == b.epoch && a.payload == b.payload &&
         a.cycle == b.cycle && a.band == b.band;
}

// Banded synthetic records: ticket = (band << 48) | local, mapping into
// band's ring segment (slot = band * capacity + local % capacity).
OpRecord banded(QueueOp op, std::uint64_t band, std::uint64_t local,
                std::uint64_t payload, std::uint64_t capacity) {
  const bool producer_side =
      op == QueueOp::kEnqueueReserve || op == QueueOp::kEnqueueWrite;
  return {op,
          producer_side ? kHostActor : 0,
          (band << kTokenBits) | local,
          band * capacity + local % capacity,
          local / capacity,
          payload,
          0,
          band};
}
OpRecord band_close(std::uint64_t band) {
  return {QueueOp::kBandClose, 0, 0, 0, 0, 0, 0, band};
}

// Clean two-band history: band 0 drains and closes, then band 1 drains.
std::vector<OpRecord> clean_banded_history(std::uint64_t capacity) {
  return {banded(QueueOp::kEnqueueReserve, 0, 0, 100, capacity),
          banded(QueueOp::kEnqueueWrite, 0, 0, 100, capacity),
          banded(QueueOp::kEnqueueReserve, 1, 0, 200, capacity),
          banded(QueueOp::kEnqueueWrite, 1, 0, 200, capacity),
          banded(QueueOp::kDequeueClaim, 0, 0, 0, capacity),
          banded(QueueOp::kDequeueDeliver, 0, 0, 100, capacity),
          band_close(0),
          banded(QueueOp::kDequeueClaim, 1, 0, 0, capacity),
          banded(QueueOp::kDequeueDeliver, 1, 0, 200, capacity)};
}

TEST(QueueChecker, AcceptsCleanHistory) {
  const CheckResult r = check_history(clean_history(4), {.capacity = 4});
  EXPECT_TRUE(r.ok()) << r.report();
  EXPECT_EQ(r.reserved, 2u);
  EXPECT_EQ(r.written, 2u);
  EXPECT_EQ(r.claimed, 2u);
  EXPECT_EQ(r.delivered, 2u);
}

TEST(QueueChecker, CatchesDoubleDelivery) {
  auto h = clean_history(4);
  h.push_back(deliver(0, 100, 4));  // exactly-once broken
  const CheckResult r = check_history(h, {.capacity = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("delivered twice"), std::string::npos)
      << r.report();
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(QueueChecker, CatchesFabricatedDelivery) {
  auto h = clean_history(4);
  h.push_back(claim(2, 4));
  h.push_back(deliver(2, 999, 4));  // ticket 2 was never written
  const CheckResult r = check_history(h, {.capacity = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("never written"), std::string::npos) << r.report();
}

TEST(QueueChecker, CatchesPayloadCorruption) {
  auto h = clean_history(4);
  h[5].payload = 777;  // deliver(0) carries a payload nobody wrote
  const CheckResult r = check_history(h, {.capacity = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("!= written payload"), std::string::npos)
      << r.report();
}

TEST(QueueChecker, CatchesLostToken) {
  auto h = clean_history(4);
  h.pop_back();  // ticket 1 claimed but its delivery vanished
  const CheckResult r =
      check_history(h, {.capacity = 4, .expect_drained = true});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("never delivered"), std::string::npos)
      << r.report();
  // The same history is legal when the run aborted mid-flight.
  EXPECT_TRUE(check_history(h, {.capacity = 4, .expect_drained = false}).ok());
}

TEST(QueueChecker, CatchesSlotEpochMismatch) {
  auto h = clean_history(4);
  h[1].slot = 3;  // write landed in the wrong ring slot
  const CheckResult r = check_history(h, {.capacity = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("slot/epoch mapping broken"), std::string::npos)
      << r.report();
}

TEST(QueueChecker, CatchesWriteWithoutReservation) {
  std::vector<OpRecord> h = {write(0, 5, 4)};
  const CheckResult r =
      check_history(h, {.capacity = 4, .expect_drained = false});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("without a prior ticket reservation"),
            std::string::npos)
      << r.report();
}

TEST(QueueChecker, CatchesTicketGap) {
  // Tickets 0 and 2 reserved, 1 missing: fetch-add counters cannot skip.
  std::vector<OpRecord> h = {reserve(0, 1, 4), write(0, 1, 4),
                             reserve(2, 3, 4), write(2, 3, 4)};
  const CheckResult r =
      check_history(h, {.capacity = 4, .expect_drained = false});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("not contiguous"), std::string::npos)
      << r.report();
}

TEST(BandedChecker, AcceptsCleanBandedHistory) {
  const CheckResult r =
      check_history(clean_banded_history(4), {.capacity = 4, .num_bands = 2});
  EXPECT_TRUE(r.ok()) << r.report();
  EXPECT_EQ(r.delivered, 2u);
}

TEST(BandedChecker, CatchesBandFieldMismatch) {
  auto h = clean_banded_history(4);
  h[5].band = 1;  // deliver record's band disagrees with its ticket
  const CheckResult r = check_history(h, {.capacity = 4, .num_bands = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("disagrees with the ticket's encoded band"),
            std::string::npos)
      << r.report();
}

TEST(BandedChecker, CatchesDeliveryAfterBandClose) {
  auto h = clean_banded_history(4);
  // A second band-0 token materializes entirely after the band closed.
  h.push_back(banded(QueueOp::kEnqueueReserve, 0, 1, 150, 4));
  h.push_back(banded(QueueOp::kEnqueueWrite, 0, 1, 150, 4));
  h.push_back(banded(QueueOp::kDequeueDeliver, 0, 1, 150, 4));
  const CheckResult r = check_history(h, {.capacity = 4, .num_bands = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("after its closure"), std::string::npos)
      << r.report();
}

TEST(BandedChecker, ClaimAfterBandCloseIsLegal) {
  // Claim-ahead: a pre-closure counter snapshot may still target the
  // band; such a claim never delivers and must NOT trip the checker.
  auto h = clean_banded_history(4);
  h.push_back(banded(QueueOp::kDequeueClaim, 0, 1, 0, 4));
  const CheckResult r = check_history(h, {.capacity = 4, .num_bands = 2});
  EXPECT_TRUE(r.ok()) << r.report();
}

TEST(BandedChecker, CatchesBandSlotMappingBroken) {
  auto h = clean_banded_history(4);
  h[3].slot = 0;  // band-1 write landed in band 0's ring segment
  const CheckResult r = check_history(h, {.capacity = 4, .num_bands = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("slot/epoch mapping broken"), std::string::npos)
      << r.report();
}

TEST(BandedChecker, CatchesBandCloseInSingleBandHistory) {
  auto h = clean_history(4);
  h.push_back(band_close(0));
  const CheckResult r = check_history(h, {.capacity = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("single-band history"), std::string::npos)
      << r.report();
}

TEST(BandedChecker, CatchesPerBandTicketGap) {
  // Band 1 reserves locals 0 and 2: fetch-add counters cannot skip.
  std::vector<OpRecord> h = {banded(QueueOp::kEnqueueReserve, 1, 0, 5, 4),
                             banded(QueueOp::kEnqueueWrite, 1, 0, 5, 4),
                             banded(QueueOp::kEnqueueReserve, 1, 2, 7, 4),
                             banded(QueueOp::kEnqueueWrite, 1, 2, 7, 4)};
  const CheckResult r = check_history(
      h, {.capacity = 4, .expect_drained = false, .num_bands = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.report().find("not contiguous in band 1"), std::string::npos)
      << r.report();
}

// Tamper with the history of a REAL multi-queue run: band closures must
// have been recorded, and the checker must notice a dropped delivery, a
// corrupted band field, and a resurrected post-closure operation.
TEST(BandedChecker, CatchesTamperedRealMqHistory) {
  SimFuzzCase c;
  c.seed = 17;
  c.variant = QueueVariant::kMq;
  c.workload = Workload::kRandom;
  c.capacity = 32;  // 4 bands x 8 slots (harness clamp leaves 4 bands)
  std::vector<OpRecord> records;
  const FuzzOutcome out = run_sim_fuzz_case(c, &records);
  ASSERT_TRUE(out.ok()) << out.describe(c);

  const CheckOptions opts{.capacity = 8, .num_bands = 4};
  std::size_t closes = 0, deliver_idx = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].op == QueueOp::kBandClose) ++closes;
    if (records[i].op == QueueOp::kDequeueDeliver &&
        deliver_idx == records.size()) {
      deliver_idx = i;
    }
  }
  EXPECT_GT(closes, 0u) << "mq run recorded no band closures";
  ASSERT_LT(deliver_idx, records.size());
  ASSERT_TRUE(check_history(records, opts).ok());

  auto dropped = records;
  dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(deliver_idx));
  EXPECT_FALSE(check_history(dropped, opts).ok());

  auto mislabeled = records;
  mislabeled[deliver_idx].band ^= 1;
  EXPECT_FALSE(check_history(mislabeled, opts).ok());

  // Replay the first delivery at the very end of the run: by then its
  // band has closed, so this trips closure monotonicity (and
  // exactly-once) rather than sneaking in as a legal late event.
  auto resurrected = records;
  resurrected.push_back(records[deliver_idx]);
  EXPECT_FALSE(check_history(resurrected, opts).ok());
}

// Tamper with the history of a REAL run: the checker must notice both a
// dropped and a duplicated delivery. This closes the loop between the
// instrumentation and the checker — if record points drifted, the clean
// run would fail instead.
TEST(QueueChecker, CatchesTamperedRealHistory) {
  SimFuzzCase c;
  c.seed = 7;
  std::vector<OpRecord> records;
  const FuzzOutcome out = run_sim_fuzz_case(c, &records);
  ASSERT_TRUE(out.ok()) << out.describe(c);
  ASSERT_GT(records.size(), 0u);

  std::size_t deliver_idx = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].op == QueueOp::kDequeueDeliver) {
      deliver_idx = i;
      break;
    }
  }
  ASSERT_LT(deliver_idx, records.size());

  auto dropped = records;
  dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(deliver_idx));
  EXPECT_FALSE(check_history(dropped, {.capacity = c.capacity}).ok());

  auto duplicated = records;
  duplicated.push_back(records[deliver_idx]);
  EXPECT_FALSE(check_history(duplicated, {.capacity = c.capacity}).ok());
}

TEST(ScheduleFuzz, SameSeedIsBitExact) {
  SimFuzzCase c;
  c.seed = 1234;
  c.variant = QueueVariant::kRfan;
  c.workload = Workload::kRandom;
  std::vector<OpRecord> first_records, second_records;
  const FuzzOutcome a = run_sim_fuzz_case(c, &first_records);
  const FuzzOutcome b = run_sim_fuzz_case(c, &second_records);
  EXPECT_TRUE(a.ok()) << a.describe(c);
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  ASSERT_EQ(first_records.size(), second_records.size());
  for (std::size_t i = 0; i < first_records.size(); ++i) {
    ASSERT_TRUE(same_record(first_records[i], second_records[i]))
        << "record " << i << " diverged between identical seeds:\n"
        << format_record(i, first_records[i]) << "\n"
        << format_record(i, second_records[i]);
  }
}

TEST(ScheduleFuzz, DifferentSeedsPerturbTheSchedule) {
  SimFuzzCase a;
  a.workload = Workload::kRandom;
  SimFuzzCase b = a;
  a.seed = 11;
  b.seed = 12;
  const FuzzOutcome ra = run_sim_fuzz_case(a);
  const FuzzOutcome rb = run_sim_fuzz_case(b);
  EXPECT_TRUE(ra.ok()) << ra.describe(a);
  EXPECT_TRUE(rb.ok()) << rb.describe(b);
  // Seeded jitter is on, so two different seeds virtually never produce
  // identical total cycle counts; both must still pass the checker.
  EXPECT_NE(ra.run.cycles, rb.run.cycles);
}

TEST(ScheduleFuzz, SeedZeroRunsLegacySchedule) {
  // seed 0 disables both tie-break permutation and jitter: the run must
  // behave exactly like the uninstrumented simulator (and still verify).
  SimFuzzCase c;
  c.seed = 0;
  const FuzzOutcome out = run_sim_fuzz_case(c);
  EXPECT_TRUE(out.ok()) << out.describe(c);
}

TEST(ScheduleFuzz, SimSweepAllVariants) {
  const QueueVariant variants[] = {QueueVariant::kBase, QueueVariant::kAn,
                                   QueueVariant::kRfan, QueueVariant::kMq};
  const Workload workloads[] = {Workload::kTree, Workload::kChain,
                                Workload::kRandom};
  // Capacities deliberately below the wave width force parked-enqueue
  // backpressure and multi-epoch slot reuse.
  const std::uint64_t capacities[] = {8, 24, 56};
  int ran = 0;
  for (QueueVariant v : variants) {
    for (Workload w : workloads) {
      for (std::uint64_t cap : capacities) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
          SimFuzzCase c;
          c.seed = seed * 0x9e3779b9u + static_cast<std::uint64_t>(v);
          c.variant = v;
          c.workload = w;
          c.capacity = cap;
          const FuzzOutcome out = run_sim_fuzz_case(c);
          EXPECT_TRUE(out.ok()) << out.describe(c);
          ++ran;
        }
      }
    }
  }
  EXPECT_EQ(ran, 216);
}

// Priority-sweep: >= 200 seeded multi-queue cases across every workload
// and capacity, each replayed through the banded checker (per-band
// exactly-once + slot mapping + band-monotone closure).
TEST(ScheduleFuzz, MqPrioritySweep) {
  const Workload workloads[] = {Workload::kTree, Workload::kChain,
                                Workload::kRandom};
  const std::uint64_t capacities[] = {8, 24, 56};
  int ran = 0;
  for (Workload w : workloads) {
    for (std::uint64_t cap : capacities) {
      for (std::uint64_t seed = 1; seed <= 23; ++seed) {
        SimFuzzCase c;
        c.seed = seed * 0x5ca1ab1eu + cap;
        c.variant = QueueVariant::kMq;
        c.workload = w;
        c.capacity = cap;
        const FuzzOutcome out = run_sim_fuzz_case(c);
        EXPECT_TRUE(out.ok()) << out.describe(c);
        ++ran;
      }
    }
  }
  EXPECT_EQ(ran, 207);
}

// Dynamic-task sweep: the framework path (spawn-from-delivery, seeded
// respawns, defer/credit shadow tasks) across every variant, so the
// exactly-once checker covers tickets that did not exist at seed time.
TEST(ScheduleFuzz, TaskFrameworkSweep) {
  const QueueVariant variants[] = {QueueVariant::kBase, QueueVariant::kAn,
                                   QueueVariant::kRfan, QueueVariant::kMq};
  const std::uint64_t capacities[] = {8, 24, 56};
  int ran = 0;
  for (QueueVariant v : variants) {
    for (std::uint64_t cap : capacities) {
      for (std::uint64_t seed = 1; seed <= 9; ++seed) {
        SimFuzzCase c;
        c.seed = seed * 0xf1ee7a5cu + cap + static_cast<std::uint64_t>(v);
        c.variant = v;
        c.workload = Workload::kTasks;
        c.capacity = cap;
        const FuzzOutcome out = run_sim_fuzz_case(c);
        EXPECT_TRUE(out.ok()) << out.describe(c);
        ++ran;
      }
    }
  }
  EXPECT_EQ(ran, 108);
}

TEST(ScheduleFuzz, HostSweep) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    HostFuzzCase c;
    c.seed = seed;
    c.capacity = 8 + (seed % 3) * 8;
    c.producers = 1 + static_cast<unsigned>(seed % 4);
    c.consumers = 1 + static_cast<unsigned>((seed / 4) % 4);
    c.items = 512;
    const FuzzOutcome out = run_host_fuzz_case(c);
    EXPECT_TRUE(out.ok()) << "host seed " << seed << "\n"
                          << out.check.report();
  }
}

}  // namespace
}  // namespace scq::fuzz
