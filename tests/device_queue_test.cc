// Tests for the three device-side queue variants (BASE / AN / RF/AN):
// slot assignment, epoch-tagged sentinel discipline, circular slot
// reuse, enqueue backpressure (parking instead of queue-full aborts),
// retry accounting, and token-conservation invariants under the
// generic persistent-thread driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <vector>

#include "core/counters.h"
#include "core/pt_driver.h"
#include "core/queue.h"
#include "sim/device.h"

namespace scq {
namespace {

using simt::Device;
using simt::DeviceConfig;
using simt::Kernel;
using simt::RunResult;
using simt::Wave;

DeviceConfig test_config(std::uint32_t cus = 4, std::uint32_t waves = 2) {
  DeviceConfig cfg;
  cfg.name = "qtest";
  cfg.num_cus = cus;
  cfg.waves_per_cu = waves;
  cfg.clock_ghz = 1.0;
  cfg.mem_latency = 100;
  cfg.line_extra = 4;
  cfg.atomic_latency = 40;
  cfg.atomic_service = 4;
  cfg.lds_latency = 8;
  cfg.issue_cost = 2;
  cfg.kernel_launch_overhead = 500;
  return cfg;
}

TEST(QueueLayoutTest, MakeInitializesSentinels) {
  Device dev(test_config());
  const QueueLayout q = make_device_queue(dev, 16);
  EXPECT_EQ(q.capacity, 16u);
  EXPECT_EQ(dev.read_word(q.front_addr()), 0u);
  EXPECT_EQ(dev.read_word(q.rear_addr()), 0u);
  EXPECT_EQ(dev.read_word(q.completed_addr()), 0u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(dev.read_word(q.slot_addr(i)), slot_empty_word(0));
  }
}

TEST(QueueLayoutTest, SlotWordEncodingRoundTrips) {
  // The epoch-tagged sentinel encoding: empty words carry the exact
  // epoch, full words an epoch tag plus the 48-bit payload.
  EXPECT_TRUE(slot_is_empty(slot_empty_word(0)));
  EXPECT_TRUE(slot_is_empty(slot_empty_word(12345)));
  EXPECT_FALSE(slot_is_empty(slot_full_word(0, 0)));
  EXPECT_FALSE(slot_is_empty(slot_full_word(7, kMaxToken)));
  EXPECT_EQ(slot_payload(slot_full_word(3, 42)), 42u);
  EXPECT_EQ(slot_payload(slot_full_word(9, kMaxToken)), kMaxToken);
  EXPECT_EQ(slot_epoch_tag(slot_full_word(3, 42)), 3u);
  // The tag wraps mod 2^15; adjacent epochs never collide.
  EXPECT_EQ(slot_epoch_tag(slot_full_word((1u << 15) + 5, 42)), 5u);
  EXPECT_NE(slot_epoch_tag(slot_full_word(4, 42)),
            slot_epoch_tag(slot_full_word(5, 42)));
}

TEST(QueueLayoutTest, SeedWritesTokensAndRear) {
  Device dev(test_config());
  const QueueLayout q = make_device_queue(dev, 8);
  const std::vector<std::uint64_t> tokens{10, 11, 12};
  seed_device_queue(dev, q, tokens);
  EXPECT_EQ(dev.read_word(q.rear_addr()), 3u);
  EXPECT_EQ(dev.read_word(q.slot_addr(0)), slot_full_word(0, 10));
  EXPECT_EQ(dev.read_word(q.slot_addr(2)), slot_full_word(0, 12));
  EXPECT_EQ(dev.read_word(q.slot_addr(3)), slot_empty_word(0));
}

TEST(QueueLayoutTest, SeedResetsControlBlockOnReuse) {
  // Re-seeding a used layout must not leak Front/Completed (or stale
  // ring contents) into the next run's termination detection.
  Device dev(test_config());
  const QueueLayout q = make_device_queue(dev, 8);
  dev.write_word(q.front_addr(), 5);
  dev.write_word(q.rear_addr(), 9);
  dev.write_word(q.completed_addr(), 7);
  for (std::uint64_t i = 0; i < 8; ++i) {
    dev.write_word(q.slot_addr(i), slot_full_word(1, 99));
  }
  seed_device_queue(dev, q, std::vector<std::uint64_t>{4, 5});
  EXPECT_EQ(dev.read_word(q.front_addr()), 0u);
  EXPECT_EQ(dev.read_word(q.rear_addr()), 2u);
  EXPECT_EQ(dev.read_word(q.completed_addr()), 0u);
  EXPECT_EQ(dev.read_word(q.slot_addr(0)), slot_full_word(0, 4));
  EXPECT_EQ(dev.read_word(q.slot_addr(1)), slot_full_word(0, 5));
  for (std::uint64_t i = 2; i < 8; ++i) {
    EXPECT_EQ(dev.read_word(q.slot_addr(i)), slot_empty_word(0));
  }
}

TEST(QueueLayoutTest, SeedRejectsOversizeBatchAndToken) {
  Device dev(test_config());
  const QueueLayout q = make_device_queue(dev, 4);
  EXPECT_THROW(seed_device_queue(dev, q, std::vector<std::uint64_t>(5, 1)),
               simt::SimError);
  EXPECT_THROW(
      seed_device_queue(dev, q, std::vector<std::uint64_t>{kMaxToken + 1}),
      simt::SimError);
}

TEST(QueueVariantNames, ToString) {
  EXPECT_EQ(to_string(QueueVariant::kBase), "BASE");
  EXPECT_EQ(to_string(QueueVariant::kAn), "AN");
  EXPECT_EQ(to_string(QueueVariant::kRfan), "RF/AN");
}

// ---- Single-wave micro tests per variant ----

class VariantTest : public ::testing::TestWithParam<QueueVariant> {};

TEST_P(VariantTest, SixtyFourHungryLanesConsumeSixtyFourTokens) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 128);
  auto queue = make_queue_variant(GetParam(), layout);
  std::vector<std::uint64_t> tokens(kWaveWidth);
  std::iota(tokens.begin(), tokens.end(), 100);
  seed_device_queue(dev, layout, tokens);

  std::array<std::uint64_t, kWaveWidth> got{};
  LaneMask got_mask = 0;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    std::array<std::uint64_t, kWaveWidth> recv{};
    // Keep asking until every lane has a token (BASE claims at most one
    // per work cycle and backs off after failures).
    for (int cycle = 0; cycle < 2000 && got_mask != simt::kAllLanes; ++cycle) {
      st.hungry = ~(st.assigned | got_mask);
      co_await queue->acquire_slots(w, st);
      const LaneMask arrived = co_await queue->check_arrival(w, st, recv);
      for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
        if ((arrived >> lane) & 1u) {
          got[lane] = recv[lane];
          got_mask |= LaneMask{1} << lane;
        }
      }
    }
  });

  EXPECT_EQ(got_mask, simt::kAllLanes);
  std::vector<std::uint64_t> sorted(got.begin(), got.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, tokens) << "each token delivered exactly once";
  // Every consumed slot must have its sentinel restored — recycled for
  // the *next* ring epoch, so the former producer can never double-fill.
  for (unsigned i = 0; i < kWaveWidth; ++i) {
    EXPECT_EQ(dev.read_word(layout.slot_addr(i)), slot_empty_word(1));
  }
}

TEST_P(VariantTest, PublishWritesTokensAndAdvancesRear) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 1024);
  auto queue = make_queue_variant(GetParam(), layout);

  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    // Lane i publishes i % 3 tokens.
    for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
      for (unsigned k = 0; k < lane % 3; ++k) {
        st.push_token(lane, lane * 10 + k);
      }
    }
    co_await queue->publish(w, st);
  });

  std::uint64_t expected_total = 0;
  for (unsigned lane = 0; lane < kWaveWidth; ++lane) expected_total += lane % 3;
  EXPECT_EQ(dev.read_word(layout.rear_addr()), expected_total);
  EXPECT_EQ(result.stats.user[kTokensEnqueued], expected_total);

  // All published tokens present (order depends on variant), no sentinel
  // left inside [0, rear), none clobbered beyond. First epoch: every
  // full word carries tag 0.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < expected_total; ++i) {
    const std::uint64_t v = dev.read_word(layout.slot_addr(i));
    ASSERT_FALSE(slot_is_empty(v)) << "slot " << i;
    EXPECT_EQ(slot_epoch_tag(v), 0u);
    seen.push_back(slot_payload(v));
  }
  EXPECT_EQ(dev.read_word(layout.slot_addr(expected_total)), slot_empty_word(0));
  std::vector<std::uint64_t> expected;
  for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
    for (unsigned k = 0; k < lane % 3; ++k) expected.push_back(lane * 10 + k);
  }
  std::sort(seen.begin(), seen.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST_P(VariantTest, QueueFullParksInsteadOfAborting) {
  // The former abort site: 64 tokens into a capacity-8 ring with no
  // consumer. The ring accepts what fits and parks the rest; nothing
  // aborts and no token is lost.
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 8);
  auto queue = make_queue_variant(GetParam(), layout);

  WaveQueueState st{};
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    st.clear_produce();
    for (unsigned lane = 0; lane < kWaveWidth; ++lane) st.push_token(lane, lane);
    co_await queue->publish(w, st);  // 64 tokens into capacity 8
  });
  EXPECT_FALSE(result.aborted) << result.abort_reason;
  // All 64 tickets are reserved (termination stays open for parked
  // tokens), exactly capacity tokens are resident, the rest wait in the
  // wave's parked buffer.
  EXPECT_EQ(dev.read_word(layout.rear_addr()), 64u);
  EXPECT_EQ(queue->resident_tokens(dev), 8u);
  EXPECT_EQ(queue->resident_tokens_scan(dev), 8u)
      << "incremental residency accounting must match the memory contents";
  EXPECT_EQ(result.stats.user[kTokensEnqueued], 8u);
  EXPECT_EQ(st.n_parked, 64u - 8u);
}

TEST_P(VariantTest, ParkedTokensDrainThroughConsumersAcrossEpochs) {
  // Full producer/consumer round trip through a ring 8x smaller than
  // the burst: publish 64, then alternate consume/flush until every
  // token has been delivered exactly once. Exercises 8 ring epochs.
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 8);
  auto queue = make_queue_variant(GetParam(), layout);

  std::vector<std::uint64_t> got;
  bool drained = false;
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
      st.push_token(lane, 100 + lane);
    }
    co_await queue->publish(w, st);

    std::array<std::uint64_t, kWaveWidth> recv{};
    for (int cycle = 0; cycle < 4000 && got.size() < kWaveWidth; ++cycle) {
      st.hungry = ~st.assigned;
      co_await queue->acquire_slots(w, st);
      const LaneMask arrived = co_await queue->check_arrival(w, st, recv);
      for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
        if ((arrived >> lane) & 1u) got.push_back(recv[lane]);
      }
      st.clear_produce();
      co_await queue->publish(w, st);  // retries parked leftovers
      co_await queue->report_complete(
          w, static_cast<std::uint32_t>(std::popcount(arrived)));
    }
    drained = !st.has_parked();
  });

  EXPECT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_TRUE(drained) << "publish retries must eventually land every token";
  ASSERT_EQ(got.size(), kWaveWidth);
  std::sort(got.begin(), got.end());
  for (unsigned i = 0; i < kWaveWidth; ++i) {
    EXPECT_EQ(got[i], 100 + i) << "token lost or duplicated at " << i;
  }
  EXPECT_EQ(dev.read_word(layout.rear_addr()), 64u);
  EXPECT_EQ(dev.read_word(layout.completed_addr()), 64u);
  EXPECT_EQ(queue->resident_tokens(dev), 0u);
  EXPECT_EQ(queue->resident_tokens_scan(dev), 0u)
      << "a drained ring must scan clean after 8 epochs of slot recycling";
  EXPECT_GT(result.stats.user[kPublishStalls], 0u)
      << "a burst 8x the ring must register publish backpressure";
}

TEST_P(VariantTest, PublishDeadlockAbortsViaDetector) {
  // With no consumer anywhere, a parked token can never land: after
  // kPublishDeadlockRounds fully-stalled retries with every progress
  // counter frozen, the detector (the only remaining queue-full abort
  // site) must fire.
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 8);
  auto queue = make_queue_variant(GetParam(), layout);

  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.clear_produce();
    for (unsigned lane = 0; lane < 16; ++lane) st.push_token(lane, lane);
    co_await queue->publish(w, st);  // 8 land, 8 park forever
    for (std::uint32_t i = 0; i < kPublishDeadlockRounds + 8; ++i) {
      st.clear_produce();
      co_await queue->publish(w, st);  // abort_kernel never resumes
    }
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("queue full"), std::string::npos);
}

TEST_P(VariantTest, ReportCompleteAccumulates) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 8);
  auto queue = make_queue_variant(GetParam(), layout);
  (void)dev.launch(2, [&](Wave& w) -> Kernel<void> {
    co_await queue->report_complete(w, 5);
    co_await queue->report_complete(w, 0);  // no-op
    co_await queue->report_complete(w, 2);
  });
  EXPECT_EQ(dev.read_word(layout.completed_addr()), 14u);
}

TEST_P(VariantTest, AllDoneSnapshot) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 8);
  auto queue = make_queue_variant(GetParam(), layout);
  seed_device_queue(dev, layout, std::vector<std::uint64_t>{1, 2});
  bool before = true, after = false;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    before = co_await queue->all_done(w);
    co_await queue->report_complete(w, 2);
    after = co_await queue->all_done(w);
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantTest,
                         ::testing::Values(QueueVariant::kBase, QueueVariant::kAn,
                                           QueueVariant::kRfan),
                         [](const auto& i) {
                           switch (i.param) {
                             case QueueVariant::kBase:
                               return "BASE";
                             case QueueVariant::kAn:
                               return "AN";
                             default:
                               return "RFAN";
                           }
                         });

// ---- Variant-specific behaviours ----

TEST(RfanQueueTest, HungryLanesOvershootAndDataArrivesLater) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 64);
  RfanQueue queue(layout);
  seed_device_queue(dev, layout, std::vector<std::uint64_t>{7, 8});

  LaneMask first_arrival = 0, second_arrival = 0;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    std::array<std::uint64_t, kWaveWidth> recv{};
    st.hungry = 0b1111;  // four hungry lanes, two tokens
    co_await queue.acquire_slots(w, st);
    EXPECT_EQ(st.assigned, 0b1111u);  // RF/AN assigns unconditionally
    first_arrival = co_await queue.check_arrival(w, st, recv);
    // Now publish two more tokens; the waiting monitors must see them.
    st.clear_produce();
    st.push_token(0, 9);
    st.push_token(0, 10);
    co_await queue.publish(w, st);
    second_arrival = co_await queue.check_arrival(w, st, recv);
  });
  EXPECT_EQ(first_arrival, 0b0011u);   // slots 0,1 had data
  EXPECT_EQ(second_arrival, 0b1100u);  // late data hit the waiting monitors
  // Front advanced once by 4: retry-free.
  EXPECT_EQ(dev.read_word(layout.front_addr()), 4u);
}

TEST(RfanQueueTest, NoCasEverIssued) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 256);
  RfanQueue queue(layout);
  std::vector<std::uint64_t> seeds(64);
  std::iota(seeds.begin(), seeds.end(), 0);

  const RunResult result = run_persistent_tasks(
      dev, queue, seeds, [](std::uint64_t, const auto&) {});
  EXPECT_EQ(result.stats.cas_attempts, 0u) << "retry-free property violated";
  EXPECT_FALSE(result.aborted);
}

TEST(AnQueueTest, EmptyQueueLeavesLanesHungryAndCountsRetry) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 64);
  AnQueue queue(layout);

  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = 0b111;
    co_await queue.acquire_slots(w, st);
    EXPECT_EQ(st.hungry, 0b111u);
    EXPECT_EQ(st.assigned, 0u);
  });
  EXPECT_EQ(result.stats.user[kEmptyRetries], 3u);
  EXPECT_EQ(dev.read_word(layout.front_addr()), 0u) << "empty dequeue must not move Front";
}

TEST(AnQueueTest, PartialAvailabilityServesSubsetInLaneOrder) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 64);
  AnQueue queue(layout);
  seed_device_queue(dev, layout, std::vector<std::uint64_t>{40, 41});

  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = 0b10110;  // lanes 1, 2, 4 hungry; only 2 tokens
    co_await queue.acquire_slots(w, st);
    EXPECT_EQ(st.assigned, 0b00110u);  // first two hungry lanes served
    EXPECT_EQ(st.hungry, 0b10000u);
    EXPECT_EQ(st.slot[1], 0u);
    EXPECT_EQ(st.slot[2], 1u);
  });
  EXPECT_EQ(dev.read_word(layout.front_addr()), 2u);
}

TEST(BaseQueueTest, LockStepCasAttemptHasOneWinner) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 256);
  BaseQueue queue(layout);
  std::vector<std::uint64_t> tokens(kWaveWidth);
  std::iota(tokens.begin(), tokens.end(), 0);
  seed_device_queue(dev, layout, tokens);

  std::array<std::uint64_t, kWaveWidth> slots{};
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = simt::kAllLanes;
    co_await queue.acquire_slots(w, st);
    // All 64 CAS loops eventually claim, but they serialize against one
    // another at the atomic unit and absorb failed attempts on the way
    // (the Fig. 1 pathology).
    EXPECT_EQ(st.assigned, simt::kAllLanes);
    slots = st.slot;
  });
  std::sort(slots.begin(), slots.end());
  for (unsigned i = 0; i < kWaveWidth; ++i) {
    EXPECT_EQ(slots[i], i) << "claims must be distinct and contiguous";
  }
  EXPECT_GE(result.stats.cas_attempts, 64u);
  EXPECT_GT(result.stats.cas_failures, 64u)
      << "lock-step retry storm must show up as folded CAS failures";
}

TEST(BaseQueueTest, FailedLanesBackOffBeforeRetrying) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 256);
  BaseQueue queue(layout);
  std::vector<std::uint64_t> tokens(kWaveWidth);
  std::iota(tokens.begin(), tokens.end(), 0);
  seed_device_queue(dev, layout, tokens);

  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = simt::kAllLanes;
    co_await queue.acquire_slots(w, st);  // 63 losers back off
    const auto& before = w.stats();
    const std::uint64_t attempts_before = before.cas_attempts;
    co_await queue.acquire_slots(w, st);  // most lanes still waiting
    EXPECT_LT(w.stats().cas_attempts - attempts_before, 32u)
        << "backoff must keep most failed lanes out of the next attempt";
  });
}

TEST(BaseQueueTest, EmptyQueueCountsRetriesPerLane) {
  Device dev(test_config());
  const QueueLayout layout = make_device_queue(dev, 64);
  BaseQueue queue(layout);
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    WaveQueueState st{};
    st.hungry = simt::kAllLanes;
    co_await queue.acquire_slots(w, st);
    EXPECT_EQ(st.assigned, 0u);
  });
  EXPECT_EQ(result.stats.user[kEmptyRetries], 64u);
  EXPECT_EQ(result.stats.cas_attempts, 0u) << "no CAS without visible work";
}

// ---- Integration: token conservation through the PT driver ----

struct TreeParams {
  std::uint64_t fanout;
  std::uint64_t depth;
  [[nodiscard]] std::uint64_t expected_tasks() const {
    // Nodes of a complete fanout-ary tree of given depth (root = depth 0).
    std::uint64_t total = 0, level = 1;
    for (std::uint64_t d = 0; d <= depth; ++d) {
      total += level;
      level *= fanout;
    }
    return total;
  }
};

class TreeConservation
    : public ::testing::TestWithParam<std::tuple<QueueVariant, int, int>> {};

TEST_P(TreeConservation, EveryTaskProcessedExactlyOnce) {
  const auto [variant, fanout, depth] = GetParam();
  const TreeParams tree{static_cast<std::uint64_t>(fanout),
                        static_cast<std::uint64_t>(depth)};

  Device dev(test_config());
  const QueueLayout layout =
      make_device_queue(dev, tree.expected_tasks() + 4 * kWaveWidth * 8);
  auto queue = make_queue_variant(variant, layout);

  // Token encodes its depth in the low bits; host map counts visits.
  std::map<std::uint64_t, int> visits;
  std::uint64_t next_id = 1;
  const std::vector<std::uint64_t> seeds{0};  // root token: id 0, depth 0

  const RunResult result = run_persistent_tasks(
      dev, *queue, seeds,
      [&](std::uint64_t token, const auto& emit) {
        visits[token] += 1;
        const std::uint64_t token_depth = token & 0xff;
        if (token_depth < tree.depth) {
          for (std::uint64_t i = 0; i < tree.fanout; ++i) {
            emit((next_id++ << 8) | (token_depth + 1));
          }
        }
      });

  EXPECT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(visits.size(), tree.expected_tasks());
  for (const auto& [token, count] : visits) {
    EXPECT_EQ(count, 1) << "token " << token << " processed " << count << " times";
  }
  EXPECT_EQ(result.stats.user[kTasksProcessed], tree.expected_tasks());
  EXPECT_EQ(dev.read_word(layout.rear_addr()), tree.expected_tasks());
  EXPECT_EQ(dev.read_word(layout.completed_addr()), tree.expected_tasks());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeConservation,
    ::testing::Combine(::testing::Values(QueueVariant::kBase, QueueVariant::kAn,
                                         QueueVariant::kRfan),
                       ::testing::Values(1, 3, 8),  // fanout
                       ::testing::Values(2, 5)),    // depth
    [](const auto& i) {
      std::string name;
      switch (std::get<0>(i.param)) {
        case QueueVariant::kBase: name = "BASE"; break;
        case QueueVariant::kAn: name = "AN"; break;
        default: name = "RFAN"; break;
      }
      return name + "_f" + std::to_string(std::get<1>(i.param)) + "_d" +
             std::to_string(std::get<2>(i.param));
    });

TEST(PtDriverTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Device dev(test_config());
    const QueueLayout layout = make_device_queue(dev, 4096);
    RfanQueue queue(layout);
    std::vector<std::uint64_t> seeds{0};
    std::uint64_t next = 1;
    return run_persistent_tasks(dev, queue, seeds,
                                [&](std::uint64_t token, const auto& emit) {
                                  if ((token & 0xff) < 4) {
                                    for (int i = 0; i < 3; ++i) {
                                      emit((next++ << 8) | ((token & 0xff) + 1));
                                    }
                                  }
                                });
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats.afa_ops, b.stats.afa_ops);
  EXPECT_EQ(a.stats.user[kWorkCycles], b.stats.user[kWorkCycles]);
}

TEST(PtDriverTest, RfanUsesFewerAtomicsThanBase) {
  auto run = [](QueueVariant variant) {
    Device dev(test_config(8, 4));
    const QueueLayout layout = make_device_queue(dev, 1 << 16);
    auto queue = make_queue_variant(variant, layout);
    std::vector<std::uint64_t> seeds{0};
    std::uint64_t next = 1;
    return run_persistent_tasks(dev, *queue, seeds,
                                [&](std::uint64_t token, const auto& emit) {
                                  if ((token & 0xff) < 6) {
                                    for (int i = 0; i < 4; ++i) {
                                      emit((next++ << 8) | ((token & 0xff) + 1));
                                    }
                                  }
                                });
  };
  const RunResult base = run(QueueVariant::kBase);
  const RunResult rfan = run(QueueVariant::kRfan);
  EXPECT_GT(base.stats.total_global_atomics(),
            4 * rfan.stats.total_global_atomics())
      << "arbitrary-n + retry-free should collapse atomic traffic";
  EXPECT_LT(rfan.cycles, base.cycles);
}

}  // namespace
}  // namespace scq
