// Tests for the CAS-loop primitive (atomic_bounded_add): claim
// semantics, partial claims, empty exits, folded-retry accounting and
// their cost model.
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "sim/device.h"

namespace simt {
namespace {

DeviceConfig cfg() {
  DeviceConfig c;
  c.num_cus = 2;
  c.waves_per_cu = 2;
  c.mem_latency = 100;
  c.atomic_latency = 50;
  c.atomic_service = 4;
  c.issue_cost = 2;
  c.lds_latency = 8;
  c.kernel_launch_overhead = 100;
  return c;
}

TEST(BoundedAddTest, ClaimsUpToBound) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  CasResult r{};
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    r = co_await w.atomic_bounded_add(b.at(0), 5, 3);  // want 5, only 3 below bound
  });
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.old_value, 0u);
  EXPECT_EQ(dev.read_word(b.at(0)), 3u) << "claim is clamped at the bound";
}

TEST(BoundedAddTest, EmptyClaimsNothing) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  dev.write_word(b.at(0), 10);
  CasResult r{};
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    r = co_await w.atomic_bounded_add(b.at(0), 4, 10);  // current == bound
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.old_value, 10u);
  EXPECT_EQ(dev.read_word(b.at(0)), 10u);
}

TEST(BoundedAddTest, SequentialClaimsPartitionTheRange) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  std::array<std::uint64_t, 4> olds{};
  (void)dev.launch(4, [&](Wave& w) -> Kernel<void> {
    const CasResult r = co_await w.atomic_bounded_add(b.at(0), 25, 100);
    olds[w.workgroup_id()] = r.old_value;
  });
  std::sort(olds.begin(), olds.end());
  EXPECT_EQ(olds, (std::array<std::uint64_t, 4>{0, 25, 50, 75}));
  EXPECT_EQ(dev.read_word(b.at(0)), 100u);
}

TEST(BoundedAddTest, UncontendedClaimHasNoRetries) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  const auto result = dev.launch(1, [&](Wave& w) -> Kernel<void> {
    (void)co_await w.atomic_bounded_add(b.at(0), 1, 10);
  });
  EXPECT_EQ(result.stats.cas_attempts, 1u);
  EXPECT_EQ(result.stats.cas_failures, 0u);
}

TEST(BoundedAddTest, ContendedClaimsFoldRetriesAndCost) {
  // Many waves claim the same counter simultaneously: later claims wait
  // behind earlier ones and absorb folded retries, which both show up
  // in stats and stretch completion.
  DeviceConfig c = cfg();
  c.num_cus = 8;
  c.waves_per_cu = 4;
  Device dev(c);
  const Buffer b = dev.alloc(1);
  const auto contended = dev.launch(32, [&](Wave& w) -> Kernel<void> {
    (void)co_await w.atomic_bounded_add(b.at(0), 1, 1'000'000);
  });
  EXPECT_EQ(dev.read_word(b.at(0)), 32u);
  EXPECT_GT(contended.stats.cas_failures, 0u);
  EXPECT_EQ(contended.stats.cas_attempts,
            32u + contended.stats.cas_failures);

  // Same work on distinct addresses: no contention, no failures.
  Device dev2(c);
  const Buffer b2 = dev2.alloc(32);
  const auto spread = dev2.launch(32, [&](Wave& w) -> Kernel<void> {
    (void)co_await w.atomic_bounded_add(b2.at(w.workgroup_id()), 1, 1'000'000);
  });
  EXPECT_EQ(spread.stats.cas_failures, 0u);
  EXPECT_LT(spread.cycles, contended.cycles);
}

TEST(BoundedAddTest, VectorFormOneClaimPerLane) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  std::array<Addr, kWaveWidth> addrs{};
  addrs.fill(b.at(0));
  std::array<std::uint64_t, kWaveWidth> ones{};
  ones.fill(1);
  std::array<std::uint64_t, kWaveWidth> bound{};
  bound.fill(40);  // only 40 available for 64 lanes
  std::array<std::uint64_t, kWaveWidth> old{};
  LaneMask claimed = 0;
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    claimed = co_await w.atomic_lanes(AtomicKind::kBoundedAdd, kAllLanes,
                                      addrs, ones, bound, old);
  });
  EXPECT_EQ(std::popcount(claimed), 40);
  EXPECT_EQ(dev.read_word(b.at(0)), 40u);
  // The claimed lanes' old values must partition 0..39.
  std::vector<std::uint64_t> claims;
  for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
    if ((claimed >> lane) & 1u) claims.push_back(old[lane]);
  }
  std::sort(claims.begin(), claims.end());
  for (std::size_t i = 0; i < claims.size(); ++i) EXPECT_EQ(claims[i], i);
}

TEST(BoundedAddTest, VectorFormReportsPerLaneRetries) {
  Device dev(cfg());
  const Buffer b = dev.alloc(1);
  std::array<Addr, kWaveWidth> addrs{};
  addrs.fill(b.at(0));
  std::array<std::uint64_t, kWaveWidth> ones{};
  ones.fill(1);
  std::array<std::uint64_t, kWaveWidth> bound{};
  bound.fill(1'000);
  std::array<std::uint64_t, kWaveWidth> old{}, retries{};
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    (void)co_await w.atomic_lanes(AtomicKind::kBoundedAdd, kAllLanes, addrs,
                                  ones, bound, old, retries);
  });
  // Lock-step: all 64 requests hit the same FIFO; the first waits for
  // nothing, later ones absorb folded retries.
  std::uint64_t total_retries = std::accumulate(retries.begin(), retries.end(),
                                                std::uint64_t{0});
  EXPECT_GT(total_retries, 0u);
}

TEST(AtomicUnitTest, BacklogPeeksWithoutMutating) {
  AtomicUnit unit(10);
  EXPECT_EQ(unit.backlog(1, 100), 0u);
  unit.service(1, 100);  // occupies until 110
  EXPECT_EQ(unit.backlog(1, 105), 5u);
  EXPECT_EQ(unit.backlog(1, 200), 0u);
  // Peeking must not have created state for address 2.
  EXPECT_EQ(unit.free_at(2), 0u);
}

TEST(AtomicUnitTest, ReserveWeightedOccupancy) {
  AtomicUnit unit(10);
  const auto first = unit.reserve(3, 100, 30);
  EXPECT_EQ(first.start, 100u);
  EXPECT_EQ(first.done, 130u);
  EXPECT_EQ(first.waited, 0u);
  const auto second = unit.reserve(3, 105, 10);
  EXPECT_EQ(second.start, 130u);
  EXPECT_EQ(second.waited, 25u);
}

}  // namespace
}  // namespace simt
