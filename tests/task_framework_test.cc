// Dynamic task framework (src/tasks) unit tests: the soundness guards
// (spawn depth, dependency-counter underflow, unreleased dependencies,
// band monotonicity), the overflow stash, phase-close accounting on the
// banded multi-queue, and the pin that the task-engine re-expression of
// pt_bfs is bit-exact with the legacy inline kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "bfs/datasets.h"
#include "bfs/pt_bfs.h"
#include "graph/bfs_ref.h"
#include "graph/generators.h"
#include "tasks/task_engine.h"

namespace scq::tasks {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig cfg = simt::spectre_config();
  cfg.name = "small";
  cfg.num_cus = 2;
  cfg.waves_per_cu = 2;
  return cfg;
}

// ---- Token packing ----

TEST(TaskToken, RoundTripsPayloadAndBand) {
  const std::uint64_t t = pack_task_checked(123456, 7);
  EXPECT_EQ(task_payload(t), 123456u);
  EXPECT_EQ(task_band(t), 7u);
}

TEST(TaskToken, BandZeroTokensAreBarePayloads) {
  // The BFS client relies on this: its tokens are bare vertex ids, and
  // they must round-trip the framework packing unchanged.
  EXPECT_EQ(pack_task(4242, 0), 4242u);
}

TEST(TaskToken, ChecksFieldOverflow) {
  EXPECT_THROW((void)pack_task_checked(kMaxPayload + 1, 0), simt::SimError);
  EXPECT_THROW((void)pack_task_checked(0, kMaxBand + 1), simt::SimError);
}

// ---- Host-task engine ----

TEST(TaskFramework, RunsSeedOnlyBatchAndCountsExecutions) {
  std::uint64_t sum = 0;
  TaskGraphOptions opt;
  opt.on_attempt = [&] { sum = 0; };
  const std::vector<TaskSeed> seeds = {{1, 0}, {2, 0}, {3, 0}};
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) { sum += ctx.payload(); }, opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(r.stats.executions, 3u);
  EXPECT_EQ(r.stats.spawns, 0u);
  EXPECT_EQ(sum, 6u);
}

TEST(TaskFramework, TracksSpawnDepthAlongChains) {
  constexpr std::uint64_t kDepth = 12;
  TaskGraphOptions opt;
  const std::vector<TaskSeed> seeds = {{0, 0}};
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        EXPECT_EQ(ctx.depth(), ctx.payload());  // chain: depth == position
        if (ctx.payload() < kDepth) ctx.spawn(ctx.payload() + 1, 0);
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(r.stats.executions, kDepth + 1);
  EXPECT_EQ(r.stats.max_depth, kDepth);
}

TEST(TaskFramework, SpawnDepthBoundAbortsRunawayChains) {
  TaskGraphOptions opt;
  opt.host.max_spawn_depth = 5;
  const std::vector<TaskSeed> seeds = {{0, 0}};
  EXPECT_THROW(
      run_task_graph(
          small_device(), seeds,
          // Unbounded self-perpetuating chain: only the guard stops it.
          [&](TaskContext& ctx) { ctx.spawn(ctx.payload() + 1, 0); }, opt),
      simt::SimError);
}

TEST(TaskFramework, DependencyCreditsReleaseDeferredTasks) {
  std::vector<std::uint64_t> order;
  std::uint64_t handle = 0;
  TaskGraphOptions opt;
  opt.on_attempt = [&] { order.clear(); };
  const std::vector<TaskSeed> seeds = {{0, 0}, {1, 0}, {2, 0}};
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        order.push_back(ctx.payload());
        if (ctx.payload() == 0) {
          // Held back until both other seeds credit it.
          handle = ctx.defer(99, 0, 2);
        } else if (ctx.payload() != 99) {
          ctx.credit(handle);
        }
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.back(), 99u);  // released strictly after both credits
  EXPECT_EQ(r.stats.deferred, 1u);
  EXPECT_EQ(r.stats.credits, 2u);
  EXPECT_EQ(r.stats.released, 1u);
}

// Seeds 0 must run before the crediting seed for the handle to exist;
// queue delivery is FIFO from the seed batch, so seed order suffices.
TEST(TaskFramework, CreditUnderflowThrows) {
  std::uint64_t handle = 0;
  TaskGraphOptions opt;
  const std::vector<TaskSeed> seeds = {{0, 0}, {1, 0}};
  EXPECT_THROW(
      run_task_graph(
          small_device(), seeds,
          [&](TaskContext& ctx) {
            if (ctx.payload() == 0) {
              handle = ctx.defer(99, 0, 1);
            } else {
              ctx.credit(handle);
              ctx.credit(handle);  // pays past zero: underflow
            }
          },
          opt),
      simt::SimError);
}

TEST(TaskFramework, UnreleasedDeferredTaskThrows) {
  TaskGraphOptions opt;
  const std::vector<TaskSeed> seeds = {{0, 0}};
  EXPECT_THROW(
      run_task_graph(
          small_device(), seeds,
          [&](TaskContext& ctx) {
            // Deferred behind a credit nobody ever pays.
            (void)ctx.defer(99, 0, 1);
          },
          opt),
      simt::SimError);
}

TEST(TaskFramework, OverflowStashDeliversWideFanouts) {
  // One seed spawns far past the per-cycle publish budget
  // (kMaxWorkBudget); the stash must deliver every child and hold the
  // parent's completion until the last one is published.
  constexpr std::uint64_t kChildren = 100;
  std::uint64_t executed_children = 0;
  TaskGraphOptions opt;
  opt.on_attempt = [&] { executed_children = 0; };
  const std::vector<TaskSeed> seeds = {{kChildren + 1, 0}};
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        if (ctx.payload() == kChildren + 1) {
          for (std::uint64_t c = 0; c < kChildren; ++c) ctx.spawn(c, 0);
        } else {
          ++executed_children;
        }
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(executed_children, kChildren);
  EXPECT_EQ(r.stats.executions, kChildren + 1);
}

TEST(TaskFramework, RespawnReenqueuesCurrentTask) {
  std::vector<int> runs(3, 0);
  TaskGraphOptions opt;
  opt.on_attempt = [&] { runs.assign(3, 0); };
  const std::vector<TaskSeed> seeds = {{0, 0}, {1, 0}, {2, 0}};
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        // Each task retries once.
        if (runs[ctx.payload()]++ == 0) ctx.respawn();
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(r.stats.respawns, 3u);
  EXPECT_EQ(r.stats.executions, 6u);
}

// ---- Banded (multi-queue) behavior ----

TEST(TaskFramework, PhaseClosesTrackClosureFrontier) {
  TaskGraphOptions opt;
  opt.variant = QueueVariant::kMq;
  opt.num_bands = 2;
  std::vector<TaskSeed> seeds;
  for (std::uint64_t v = 0; v < 24; ++v) seeds.push_back({v, 0});
  std::uint64_t phase1 = 0;
  opt.on_attempt = [&] { phase1 = 0; };
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        if (ctx.band() == 0) {
          ctx.spawn(ctx.payload(), 1);
        } else {
          ++phase1;
        }
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(phase1, 24u);
  // Both bands ran dry, so the closure frontier swept the whole queue:
  // one observed close per band, and never a regression (the engine
  // throws on one).
  EXPECT_EQ(r.stats.phase_closes, 2u);
}

TEST(TaskFramework, SpawnIntoLowerBandThrowsOnBandedQueues) {
  TaskGraphOptions opt;
  opt.variant = QueueVariant::kMq;
  opt.num_bands = 2;
  const std::vector<TaskSeed> seeds = {{0, 1}};  // starts in band 1
  EXPECT_THROW(
      run_task_graph(
          small_device(), seeds,
          [&](TaskContext& ctx) { ctx.spawn(1, 0); },  // band 1 -> band 0
          opt),
      simt::SimError);
}

TEST(TaskFramework, LowerBandSpawnAllowedOnSingleBandQueues) {
  // FIFO rings have no closure to protect: band bits are inert metadata.
  TaskGraphOptions opt;
  opt.variant = QueueVariant::kRfan;
  const std::vector<TaskSeed> seeds = {{0, 1}};
  std::uint64_t executed = 0;
  opt.on_attempt = [&] { executed = 0; };
  const TaskGraphResult r = run_task_graph(
      small_device(), seeds,
      [&](TaskContext& ctx) {
        ++executed;
        if (ctx.band() == 1) ctx.spawn(1, 0);
      },
      opt);
  EXPECT_FALSE(r.run.aborted);
  EXPECT_EQ(executed, 2u);
}

// ---- pt_bfs on the engine: bit-exact with the legacy kernel ----

class PtBfsEngineBitExact
    : public ::testing::TestWithParam<std::tuple<QueueVariant, bool>> {};

TEST_P(PtBfsEngineBitExact, MatchesLegacyKernelCycleForCycle) {
  const auto [variant, atomic] = GetParam();
  graph::RmatParams p;
  p.n_vertices = 1024;
  p.n_edges = 8192;
  const graph::Graph g = graph::rmat(p);

  bfs::PtBfsOptions legacy;
  legacy.variant = variant;
  legacy.atomic_discovery = atomic;
  legacy.use_task_engine = false;
  bfs::PtBfsOptions engine = legacy;
  engine.use_task_engine = true;

  const bfs::BfsResult a = bfs::run_pt_bfs(small_device(), g, 0, legacy);
  const bfs::BfsResult b = bfs::run_pt_bfs(small_device(), g, 0, engine);
  ASSERT_FALSE(a.run.aborted);
  ASSERT_FALSE(b.run.aborted);
  // The engine re-expression must not perturb the event schedule at
  // all: same cycle count, same attempt count, same levels.
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.levels, b.levels);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PtBfsEngineBitExact,
    ::testing::Combine(::testing::Values(QueueVariant::kBase, QueueVariant::kAn,
                                         QueueVariant::kRfan),
                       ::testing::Bool()));

}  // namespace
}  // namespace scq::tasks
