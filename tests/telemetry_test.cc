// Tests for the telemetry subsystem: histogram bucket boundaries and
// percentile math, the cycle-driven sampler (period, rollover, shards,
// caps), device integration, and a JSON round-trip that parses the
// exported artifacts with the shared util/json.h parser (which started
// life in this file before being promoted for the perf-diff tooling).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/telemetry.h"
#include "sim/trace.h"
#include "util/json.h"

namespace simt {
namespace {

using scq::util::JsonValue;
using scq::util::parse_json;

// ---- Histogram ----------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::bucket_low(0), 0u);
  EXPECT_EQ(Histogram::bucket_high(0), 0u);
  EXPECT_EQ(Histogram::bucket_low(1), 1u);
  EXPECT_EQ(Histogram::bucket_high(1), 1u);
  EXPECT_EQ(Histogram::bucket_low(5), 16u);
  EXPECT_EQ(Histogram::bucket_high(5), 31u);
  EXPECT_EQ(Histogram::bucket_high(64), ~std::uint64_t{0});

  // Every representable value falls inside its bucket's range.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull,
                                (1ull << 40) + 17}) {
    const unsigned b = Histogram::bucket_index(v);
    EXPECT_GE(v, Histogram::bucket_low(b));
    EXPECT_LE(v, Histogram::bucket_high(b));
  }
}

TEST(HistogramTest, CountsSumsMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u) << "empty histogram min reads 0";
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);

  h.add(3);
  h.add(5, 2);  // weighted: two observations of 5
  h.add(0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 4.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // 3
  EXPECT_EQ(h.bucket_count(3), 2u);  // 5, 5

  h.add(7, 0);  // zero weight is a no-op
  EXPECT_EQ(h.count(), 4u);
}

TEST(HistogramTest, PercentileMath) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1);
  // All mass in one single-value bucket: every percentile is that value.
  EXPECT_EQ(h.percentile(1), 1u);
  EXPECT_EQ(h.percentile(50), 1u);
  EXPECT_EQ(h.percentile(99), 1u);

  Histogram mix;
  for (int i = 0; i < 90; ++i) mix.add(0);
  for (int i = 0; i < 10; ++i) mix.add(1000);
  EXPECT_EQ(mix.percentile(0), 0u) << "p0 is the minimum";
  EXPECT_EQ(mix.percentile(50), 0u);
  EXPECT_EQ(mix.percentile(89), 0u);
  EXPECT_GE(mix.percentile(95), 512u) << "falls in the top bucket";
  EXPECT_EQ(mix.percentile(100), 1000u) << "p100 is the maximum";

  // Percentiles are monotone in p and clamped to [min, max].
  std::uint64_t prev = 0;
  for (double p = 0; p <= 100; p += 5) {
    const std::uint64_t v = mix.percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, mix.min());
    EXPECT_LE(v, mix.max());
    prev = v;
  }
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a, b;
  a.add(1);
  a.add(100);
  b.add(7, 3);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 122u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
  a.merge(Histogram{});  // merging empty changes nothing
  EXPECT_EQ(a.count(), 5u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

// ---- Sampler ------------------------------------------------------------

TEST(TelemetryTest, SamplerHonorsPeriod) {
  Telemetry t({.sample_period = 100, .max_samples = 1024});
  t.register_gauge("g", [](Cycle now) { return now; });

  // Dense advance: one sample per period despite many ticks.
  for (Cycle c = 0; c <= 1000; ++c) t.on_advance(c);
  const auto& points = t.series().at("g");
  ASSERT_EQ(points.size(), 11u) << "cycles 0,100,...,1000";
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].cycle, i * 100);
    EXPECT_EQ(points[i].value, i * 100);
  }
}

TEST(TelemetryTest, SamplerRollsOverSparseTime) {
  // Discrete-event time jumps; a jump over several periods yields ONE
  // sample (at the jump target), then realigns to the next period.
  Telemetry t({.sample_period = 100, .max_samples = 1024});
  t.register_gauge("g", [](Cycle) { return 7; });
  t.on_advance(5);     // first sample (clock starts due)
  t.on_advance(450);   // jumped 4 periods: one sample, next due at 500
  t.on_advance(460);   // not due
  t.on_advance(500);   // due again
  const auto& points = t.series().at("g");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].cycle, 5u);
  EXPECT_EQ(points[1].cycle, 450u);
  EXPECT_EQ(points[2].cycle, 500u);
}

TEST(TelemetryTest, ShardedGaugesSumAcrossWriters) {
  Telemetry t({.sample_period = 10, .max_samples = 16});
  t.set_shard("lanes", 0, 3);
  t.set_shard("lanes", 5, 4);  // sparse shard ids are fine
  t.sample_now(0);
  t.set_shard("lanes", 0, 1);  // overwrite, not accumulate
  t.sample_now(10);
  const auto& points = t.series().at("lanes");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].value, 7u);
  EXPECT_EQ(points[1].value, 5u);
}

TEST(TelemetryTest, MaxSamplesCapsAndCounts) {
  Telemetry t({.sample_period = 1, .max_samples = 4});
  t.register_gauge("g", [](Cycle) { return 1; });
  for (Cycle c = 0; c < 10; ++c) t.sample_now(c);
  EXPECT_EQ(t.series().at("g").size(), 4u);
  EXPECT_EQ(t.dropped_samples(), 6u);
  t.reset_data();
  EXPECT_TRUE(t.series().empty());
  EXPECT_EQ(t.dropped_samples(), 0u);
}

TEST(TelemetryTest, ClearProbesRestartsSamplingClock) {
  Telemetry t({.sample_period = 100, .max_samples = 16});
  t.register_gauge("a", [](Cycle) { return 1; });
  t.sample_now(950);  // next tick now aligned to 1000
  t.clear_probes();   // new run starts at cycle 0 again
  t.register_gauge("b", [](Cycle) { return 2; });
  t.on_advance(3);
  EXPECT_EQ(t.series().count("b"), 1u)
      << "early cycles of the new run must not be masked by the old clock";
  EXPECT_EQ(t.series().at("a").size(), 1u) << "recorded data survives";
}

TEST(TelemetryTest, MirrorsSamplesToTraceCounters) {
  TraceRecorder trace;
  Telemetry t({.sample_period = 10, .max_samples = 16});
  t.mirror_counters_to(&trace);
  t.register_gauge("occ", [](Cycle now) { return now * 2; });
  t.sample_now(0);
  t.sample_now(10);
  ASSERT_EQ(trace.counters().size(), 2u);
  EXPECT_EQ(trace.counters()[1].name, "occ");
  EXPECT_EQ(trace.counters()[1].cycle, 10u);
  EXPECT_DOUBLE_EQ(trace.counters()[1].value, 20.0);
}

// ---- Device integration -------------------------------------------------

DeviceConfig small_cfg() {
  DeviceConfig c;
  c.num_cus = 2;
  c.waves_per_cu = 1;
  c.mem_latency = 100;
  c.atomic_latency = 50;
  c.atomic_service = 4;
  c.lds_latency = 8;
  c.issue_cost = 2;
  c.kernel_launch_overhead = 1000;
  return c;
}

TEST(TelemetryTest, DeviceDrivesSampler) {
  Device dev(small_cfg());
  Telemetry t({.sample_period = 500, .max_samples = 1024});
  t.register_gauge("tick", [](Cycle now) { return now; });
  dev.attach_telemetry(&t);
  EXPECT_EQ(dev.telemetry(), &t);
  (void)dev.launch(1, [&](Wave& w) -> Kernel<void> {
    for (int i = 0; i < 10; ++i) co_await w.compute(300);
  });
  const auto& points = t.series().at("tick");
  ASSERT_GE(points.size(), 4u) << "several periods elapsed plus final flush";
  // Cycles are non-decreasing; the end-of-launch flush may duplicate the
  // last periodic sample's cycle.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].cycle, points[i - 1].cycle);
  }
}

// ---- Exporters ----------------------------------------------------------

TEST(TelemetryTest, JsonRoundTrips) {
  Telemetry t({.sample_period = 50, .max_samples = 64});
  t.histogram("lat").add(3);
  t.histogram("lat").add(200, 2);
  t.histogram("weird \"name\"\n").add(1);
  t.register_gauge("occ", [](Cycle now) { return 10 + now; });
  t.sample_now(0);
  t.sample_now(50);

  const auto parsed = parse_json(t.to_json());
  ASSERT_TRUE(parsed.has_value()) << "export must be valid JSON";
  ASSERT_EQ(parsed->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(parsed->at("sample_period").number, 50.0);
  EXPECT_EQ(parsed->at("dropped_samples").number, 0.0);

  const JsonValue& hists = parsed->at("histograms");
  ASSERT_EQ(hists.object.size(), 2u) << "escaped name must round-trip too";
  ASSERT_TRUE(hists.has("lat"));
  const JsonValue& lat = hists.at("lat");
  EXPECT_EQ(lat.at("count").number, 3.0);
  EXPECT_EQ(lat.at("sum").number, 403.0);
  EXPECT_EQ(lat.at("min").number, 3.0);
  EXPECT_EQ(lat.at("max").number, 200.0);
  ASSERT_EQ(lat.at("buckets").array.size(), 2u);
  const JsonValue& top = lat.at("buckets").array[1];
  EXPECT_EQ(top.at("low").number, 128.0);
  EXPECT_EQ(top.at("high").number, 255.0);
  EXPECT_EQ(top.at("count").number, 2.0);

  const JsonValue& series = parsed->at("series");
  ASSERT_TRUE(series.has("occ"));
  const JsonValue& occ = series.at("occ");
  ASSERT_EQ(occ.array.size(), 2u);
  ASSERT_EQ(occ.array[1].array.size(), 2u);
  EXPECT_EQ(occ.array[1].array[0].number, 50.0) << "[cycle, value] pairs";
  EXPECT_EQ(occ.array[1].array[1].number, 60.0);
}

TEST(TelemetryTest, TraceCounterEventsRoundTrip) {
  // Telemetry samples mirrored into the tracer must come back out of the
  // Chrome JSON as parseable "ph":"C" counter events.
  TraceRecorder trace;
  Telemetry t({.sample_period = 100, .max_samples = 64});
  t.mirror_counters_to(&trace);
  t.register_gauge("queue.occupancy", [](Cycle now) { return now / 10; });
  t.sample_now(0);
  t.sample_now(100);
  t.sample_now(200);

  const auto parsed = parse_json(trace.to_chrome_json());
  ASSERT_TRUE(parsed.has_value()) << "trace export must be valid JSON";
  ASSERT_TRUE(parsed->has("traceEvents"));
  const JsonValue& events = parsed->at("traceEvents");

  std::vector<const JsonValue*> counters;
  const JsonValue* dropped = nullptr;
  for (const JsonValue& e : events.array) {
    if (e.at("ph").str == "C") counters.push_back(&e);
    if (e.at("ph").str == "M") dropped = &e;
  }
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[2]->at("name").str, "queue.occupancy");
  EXPECT_EQ(counters[2]->at("ts").number, 200.0);
  EXPECT_EQ(counters[2]->at("args").at("value").number, 20.0);
  ASSERT_NE(dropped, nullptr) << "drop-count metadata is always present";
  EXPECT_EQ(dropped->at("name").str, "dropped");
  EXPECT_EQ(dropped->at("args").at("counters").number, 0.0);
}

TEST(TelemetryTest, CsvExports) {
  Telemetry t({.sample_period = 10, .max_samples = 16});
  t.histogram("h").add(5);
  t.register_gauge("s", [](Cycle) { return 9; });
  t.sample_now(20);
  const std::string hist = t.histograms_csv();
  EXPECT_NE(hist.find("histogram,bucket_low,bucket_high,count"),
            std::string::npos);
  EXPECT_NE(hist.find("h,4,7,1"), std::string::npos);
  const std::string series = t.series_csv();
  EXPECT_NE(series.find("series,cycle,value"), std::string::npos);
  EXPECT_NE(series.find("s,20,9"), std::string::npos);
}

TEST(TelemetryTest, WriteJsonReportsFailure) {
  Telemetry t;
  t.histogram("h").add(1);
  const std::string path = ::testing::TempDir() + "/scq_telemetry.json";
  ASSERT_TRUE(t.write_json(path));
  EXPECT_FALSE(t.write_json("/nonexistent-dir/telemetry.json"));
}

}  // namespace
}  // namespace simt
