// Calendar-queue ordering tests: the EventQueue must pop the minimum
// pending event by (t, key, seq) — bit-identical to a comparison heap
// over the same order — for any interleaving of pushes and pops,
// including same-cycle bursts, far jumps past the bucket window, pushes
// at or before the cycle being drained, bucket-count resizes, and
// reuse after clear(). The property test drives both structures with
// seeded streams shaped to hit each of those regimes; the fuzz-seed
// sweep then replays whole simulations through tests/support to show
// the engine's schedules stay bit-exact run to run.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event_queue.h"
#include "support/fuzz_harness.h"
#include "util/prng.h"

namespace simt {
namespace {

struct RefAfter {
  bool operator()(const Event& a, const Event& b) const {
    return event_after(a, b);
  }
};
using RefQueue = std::priority_queue<Event, std::vector<Event>, RefAfter>;

void expect_same_top(const Event& got, const Event& want, std::uint64_t step) {
  ASSERT_EQ(got.t, want.t) << "step " << step;
  ASSERT_EQ(got.key, want.key) << "step " << step;
  ASSERT_EQ(got.seq, want.seq) << "step " << step;
}

// Drains both queues completely, checking every pop.
void drain_and_compare(EventQueue& q, RefQueue& ref) {
  std::uint64_t step = 0;
  while (!ref.empty()) {
    ASSERT_FALSE(q.empty());
    expect_same_top(q.top(), ref.top(), step);
    const Event got = q.pop();
    expect_same_top(got, ref.top(), step);
    ref.pop();
    ++step;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SameCycleOrdersByKeyThenSeq) {
  EventQueue q;
  RefQueue ref;
  // One cycle, shuffled keys, including key ties broken by seq.
  const std::uint64_t keys[] = {5, 1, 9, 1, 3, 9, 0};
  std::uint64_t seq = 0;
  for (const std::uint64_t k : keys) {
    q.push(100, k, seq, {});
    ref.push(Event{100, k, seq, {}});
    ++seq;
  }
  drain_and_compare(q, ref);
}

TEST(EventQueue, FarJumpThenBackfill) {
  EventQueue q;
  RefQueue ref;
  std::uint64_t seq = 0;
  const auto add = [&](Cycle t) {
    q.push(t, seq, seq, {});
    ref.push(Event{t, seq, seq, {}});
    ++seq;
  };
  add(10);
  add(1'000'000);  // far beyond the initial 2048-cycle window
  add(500'000);
  add(11);
  // Pop the near pair, then push more near events *behind* the far
  // window before it rebases.
  for (int i = 0; i < 2; ++i) {
    expect_same_top(q.pop(), ref.top(), static_cast<std::uint64_t>(i));
    ref.pop();
  }
  add(600'000);
  add(500'001);
  drain_and_compare(q, ref);
}

TEST(EventQueue, LatePushLandsInCurrentDrain) {
  EventQueue q;
  RefQueue ref;
  // Fill one bucket, start draining it, then push an event timestamped
  // before the event just popped — it must still come out in global
  // (t, key, seq) order relative to everything pending.
  q.push(16, 0, 0, {});
  ref.push(Event{16, 0, 0, {}});
  q.push(18, 0, 1, {});
  ref.push(Event{18, 0, 1, {}});
  expect_same_top(q.pop(), ref.top(), 0);
  ref.pop();
  q.push(17, 0, 2, {});  // same bucket, mid-drain
  ref.push(Event{17, 0, 2, {}});
  q.push(16, 0, 3, {});  // at the popped cycle
  ref.push(Event{16, 0, 3, {}});
  drain_and_compare(q, ref);
}

TEST(EventQueue, GrowCrossingKeepsOrder) {
  EventQueue q;
  RefQueue ref;
  // Push densely enough to force at least one bucket-count doubling
  // (grow triggers past 2 events per bucket across 256 buckets), with
  // interleaved pops so the resize happens mid-drain.
  std::uint64_t s = 0xfeedface;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t h = scq::util::splitmix64(s);
    const Cycle t = 100 + (h % 512);
    q.push(t, h >> 32, seq, {});
    ref.push(Event{t, h >> 32, seq, {}});
    ++seq;
    if (i % 7 == 6) {
      expect_same_top(q.pop(), ref.top(), seq);
      ref.pop();
    }
  }
  EXPECT_GT(q.bucket_count(), 256u);
  drain_and_compare(q, ref);
}

TEST(EventQueue, ClearResetsForReuse) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    q.push(static_cast<Cycle>(i * 3), 0, static_cast<std::uint64_t>(i), {});
  }
  (void)q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  RefQueue ref;
  q.push(7, 1, 0, {});
  ref.push(Event{7, 1, 0, {}});
  q.push(3, 0, 1, {});
  ref.push(Event{3, 0, 1, {}});
  drain_and_compare(q, ref);
}

// The main property: seeded push/pop streams spanning every regime the
// engine produces — near-monotonic completions, same-cycle bursts,
// kernel-launch far jumps, occasional pushes at or before the drain
// point — pop in exactly the reference heap's order.
TEST(EventQueue, PropertyMatchesHeapAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    EventQueue q;
    RefQueue ref;
    std::uint64_t s = seed * 0x9e3779b97f4a7c15ull;
    std::uint64_t seq = 0;
    Cycle now = 0;  // tracks the last popped timestamp, like the engine
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t h = scq::util::splitmix64(s);
      const bool do_pop = !ref.empty() && (h % 5 == 0);
      if (do_pop) {
        SCOPED_TRACE(testing::Message() << "seed " << seed << " op " << op);
        expect_same_top(q.top(), ref.top(), seq);
        const Event got = q.pop();
        expect_same_top(got, ref.top(), seq);
        now = got.t;
        ref.pop();
        continue;
      }
      Cycle t;
      switch ((h >> 8) % 8) {
        case 0:  t = now; break;                         // same-cycle burst
        case 1:  t = now + (h >> 16) % 4; break;         // intra-bucket
        case 2:  t = now + (h >> 16) % 200; break;       // near completion
        case 3:  t = now + 2048 + (h >> 16) % 100'000; break;  // far jump
        case 4:  t = now > 16 ? now - (h >> 16) % 16 : 0; break;  // late
        default: t = now + (h >> 16) % 1500; break;      // window-scale
      }
      const std::uint64_t key = (h >> 24) % 3 == 0 ? 0 : (h >> 32);
      q.push(t, key, seq, {});
      ref.push(Event{t, key, seq, {}});
      ++seq;
      ASSERT_EQ(q.size(), ref.size());
    }
    drain_and_compare(q, ref);
  }
}

// Whole-simulation replay across fuzz seeds: the same seeded case run
// twice produces bit-identical schedules (cycle counts and history
// sizes). This is the engine-level face of the pop-order contract —
// any calendar/heap divergence shows up here as a differing schedule.
TEST(EventQueue, FuzzCaseReplayIsBitExact) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 40ull}) {
    scq::fuzz::SimFuzzCase c;
    c.seed = seed;
    const scq::fuzz::FuzzOutcome a = scq::fuzz::run_sim_fuzz_case(c);
    const scq::fuzz::FuzzOutcome b = scq::fuzz::run_sim_fuzz_case(c);
    EXPECT_TRUE(a.ok()) << a.describe(c);
    EXPECT_EQ(a.run.cycles, b.run.cycles) << "seed " << seed;
    EXPECT_EQ(a.history_records, b.history_records) << "seed " << seed;
    EXPECT_EQ(a.run.stats.afa_ops, b.run.stats.afa_ops) << "seed " << seed;
  }
}

}  // namespace
}  // namespace simt
