// Partitioner unit tests: every policy yields a total partition, the
// degree-balanced policy honors its greedy bound, and the degenerate
// shapes (empty graph, singleton, more parts than vertices) hold up.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/partition.h"

namespace scq::graph {
namespace {

Graph star(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

class PartitionPolicies : public ::testing::TestWithParam<PartitionPolicy> {};

TEST_P(PartitionPolicies, IsATotalPartition) {
  RmatParams p;
  p.n_vertices = 1024;
  p.n_edges = 8192;
  const Graph g = rmat(p);
  for (std::uint32_t parts : {1u, 2u, 3u, 8u}) {
    const Partition part = partition_graph(g, parts, GetParam());
    ASSERT_EQ(part.num_parts, parts);
    ASSERT_EQ(part.owner.size(), g.num_vertices());
    ASSERT_EQ(part.part_vertices.size(), parts);
    ASSERT_EQ(part.part_degree.size(), parts);

    // Every vertex owned by exactly one part, listed exactly once.
    std::vector<std::uint32_t> seen(g.num_vertices(), 0);
    std::uint64_t total_degree = 0;
    for (std::uint32_t d = 0; d < parts; ++d) {
      std::uint64_t deg = 0;
      for (Vertex v : part.part_vertices[d]) {
        ASSERT_LT(v, g.num_vertices());
        EXPECT_EQ(part.owner[v], d);
        seen[v] += 1;
        deg += g.out_degree(v);
      }
      EXPECT_EQ(part.part_degree[d], deg);
      EXPECT_TRUE(std::is_sorted(part.part_vertices[d].begin(),
                                 part.part_vertices[d].end()));
      total_degree += deg;
    }
    for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(seen[v], 1u);
    EXPECT_EQ(total_degree, g.num_edges());

    EXPECT_GE(part.degree_imbalance(), parts == 1 ? 1.0 : 0.0);
    EXPECT_GE(part.cut_fraction(g), 0.0);
    EXPECT_LE(part.cut_fraction(g), 1.0);
    if (parts == 1) {
      EXPECT_EQ(part.cut_edges, 0u);
      EXPECT_DOUBLE_EQ(part.degree_imbalance(), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PartitionPolicies,
                         ::testing::Values(PartitionPolicy::kBlock,
                                           PartitionPolicy::kRoundRobin,
                                           PartitionPolicy::kDegreeBalanced),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param)) == "block"
                                      ? "Block"
                                  : to_string(pinfo.param) == "round-robin"
                                      ? "RoundRobin"
                                      : "DegreeBalanced";
                         });

TEST(PartitionTest, BlockAssignsContiguousRanges) {
  const Graph g = synthetic_kary(100, 3);
  const Partition part = partition_graph(g, 3, PartitionPolicy::kBlock);
  for (Vertex v = 0; v + 1 < g.num_vertices(); ++v) {
    EXPECT_LE(part.owner[v], part.owner[v + 1]);
  }
}

TEST(PartitionTest, RoundRobinIsModulo) {
  const Graph g = synthetic_kary(100, 3);
  const Partition part = partition_graph(g, 4, PartitionPolicy::kRoundRobin);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(part.owner[v], v % 4);
  }
}

TEST(PartitionTest, DegreeBalancedHonorsGreedyBound) {
  // LPT greedy guarantee: max load <= mean load + max single item. The
  // star graph is the adversarial case (one vertex holds every edge).
  for (const Graph& g : {star(500), synthetic_kary(2000, 4), [] {
         RmatParams p;
         p.n_vertices = 2048;
         p.n_edges = 16384;
         return rmat(p);
       }()}) {
    for (std::uint32_t parts : {2u, 4u, 7u}) {
      const Partition part =
          partition_graph(g, parts, PartitionPolicy::kDegreeBalanced);
      std::uint64_t max_single = 0;
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        max_single = std::max<std::uint64_t>(max_single, g.out_degree(v));
      }
      const double mean =
          static_cast<double>(g.num_edges()) / static_cast<double>(parts);
      for (std::uint32_t d = 0; d < parts; ++d) {
        EXPECT_LE(static_cast<double>(part.part_degree[d]),
                  mean + static_cast<double>(max_single));
      }
    }
  }
}

TEST(PartitionTest, EmptyAndSingletonGraphs) {
  const Graph empty = Graph::from_edges(0, {});
  const Partition pe = partition_graph(empty, 4, PartitionPolicy::kBlock);
  EXPECT_TRUE(pe.owner.empty());
  EXPECT_EQ(pe.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(pe.degree_imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(pe.cut_fraction(empty), 0.0);

  const Graph one = Graph::from_edges(1, {});
  for (auto policy : {PartitionPolicy::kBlock, PartitionPolicy::kRoundRobin,
                      PartitionPolicy::kDegreeBalanced}) {
    const Partition p1 = partition_graph(one, 3, PartitionPolicy(policy));
    ASSERT_EQ(p1.owner.size(), 1u);
    EXPECT_LT(p1.owner[0], 3u);
    EXPECT_EQ(p1.cut_edges, 0u);
  }
}

TEST(PartitionTest, MorePartsThanVertices) {
  const Graph g = synthetic_kary(3, 2);
  const Partition part = partition_graph(g, 8, PartitionPolicy::kBlock);
  ASSERT_EQ(part.part_vertices.size(), 8u);
  std::uint32_t nonempty = 0;
  for (const auto& vs : part.part_vertices) nonempty += !vs.empty();
  EXPECT_LE(nonempty, 3u);
  EXPECT_GE(nonempty, 1u);
}

TEST(PartitionTest, CutEdgesCountsCrossingEdgesExactly) {
  // 0->1->2->3 split in half at vertex 2: exactly one crossing edge.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const Partition part = partition_graph(g, 2, PartitionPolicy::kBlock);
  EXPECT_EQ(part.owner[1], 0u);
  EXPECT_EQ(part.owner[2], 1u);
  EXPECT_EQ(part.cut_edges, 1u);
  EXPECT_DOUBLE_EQ(part.cut_fraction(g), 1.0 / 3.0);
}

TEST(PartitionTest, PolicyStringsRoundTrip) {
  for (auto policy : {PartitionPolicy::kBlock, PartitionPolicy::kRoundRobin,
                      PartitionPolicy::kDegreeBalanced}) {
    EXPECT_EQ(partition_policy_from_string(to_string(policy)), policy);
  }
  EXPECT_EQ(partition_policy_from_string("rr"), PartitionPolicy::kRoundRobin);
  EXPECT_EQ(partition_policy_from_string("degree-balanced"),
            PartitionPolicy::kDegreeBalanced);
  EXPECT_THROW((void)partition_policy_from_string("metis"), std::invalid_argument);
}

TEST(PartitionTest, InvalidPartCountThrows) {
  const Graph g = synthetic_kary(10, 2);
  EXPECT_THROW(partition_graph(g, 0, PartitionPolicy::kBlock),
               std::invalid_argument);
}

}  // namespace
}  // namespace scq::graph
