// Graph substrate tests: CSR construction/validation, generators'
// statistical targets, loader round-trips, and reference BFS.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/bfs_ref.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/loaders.h"
#include "graph/stats.h"

namespace scq::graph {
namespace {

TEST(GraphTest, FromEdgesBuildsSortedCsr) {
  const std::vector<Edge> edges{{2, 0}, {0, 1}, {0, 2}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  g.validate();
}

TEST(GraphTest, SymmetrizeDoublesEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, /*symmetrize=*/true);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(GraphTest, DedupRemovesParallelEdges) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(Graph::from_edges(2, edges).num_edges(), 3u);
  EXPECT_EQ(Graph::from_edges(2, edges, false, /*dedup=*/true).num_edges(), 1u);
}

TEST(GraphTest, OutOfRangeEndpointThrows) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW((void)Graph::from_edges(3, edges), std::invalid_argument);
}

TEST(GraphTest, FromCsrValidates) {
  EXPECT_THROW((void)Graph::from_csr({0, 2, 1}, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)Graph::from_csr({0, 1}, {5}), std::invalid_argument);
  EXPECT_THROW((void)Graph::from_csr({1, 2}, {0}), std::invalid_argument);
  const Graph ok = Graph::from_csr({0, 1, 2}, {1, 0});
  EXPECT_EQ(ok.num_vertices(), 2u);
}

// ---- Generators ----

TEST(GeneratorTest, KaryTreeShape) {
  const Graph g = synthetic_kary(21, 4);  // 1 + 4 + 16 = 21: full 2 levels
  EXPECT_EQ(g.num_vertices(), 21u);
  EXPECT_EQ(g.num_edges(), 20u);  // tree: V-1 edges
  EXPECT_EQ(g.out_degree(0), 4u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[3], 4u);
  EXPECT_EQ(g.out_degree(20), 0u);  // leaf
  const auto profile = frontier_profile(g, 0);
  EXPECT_EQ(profile, (std::vector<std::uint64_t>{1, 4, 16}));
}

TEST(GeneratorTest, KaryFrontierGrowsByFanout) {
  const Graph g = synthetic_kary(1 << 14, 4);
  const auto profile = frontier_profile(g, 0);
  ASSERT_GE(profile.size(), 5u);
  for (std::size_t level = 0; level + 2 < profile.size(); ++level) {
    EXPECT_EQ(profile[level + 1], profile[level] * 4) << "level " << level;
  }
}

TEST(GeneratorTest, RmatMatchesSizeAndIsDeterministic) {
  RmatParams p;
  p.n_vertices = 1 << 12;
  p.n_edges = 1 << 15;
  p.seed = 42;
  const Graph a = rmat(p);
  const Graph b = rmat(p);
  EXPECT_EQ(a.num_edges(), p.n_edges);
  EXPECT_EQ(a.cols(), b.cols()) << "same seed, same graph";
  p.seed = 43;
  const Graph c = rmat(p);
  EXPECT_NE(a.cols(), c.cols()) << "different seed, different graph";
}

TEST(GeneratorTest, RmatIsSkewed) {
  RmatParams p;
  p.n_vertices = 1 << 12;
  p.n_edges = 1 << 16;
  const DegreeStats s = degree_stats(rmat(p));
  // Power-law: max degree far above average, std above average (the
  // gplus/soc-LJ signature the paper calls out in Table 1).
  EXPECT_GT(static_cast<double>(s.max_degree), 8.0 * s.avg_degree);
  EXPECT_GT(s.std_degree, s.avg_degree);
}

TEST(GeneratorTest, RoadNetworkDegreeAndDepth) {
  RoadParams p;
  p.n_vertices = 1 << 14;
  const Graph g = road_network(p);
  const DegreeStats s = degree_stats(g);
  // Table 2 signature: fan-out between 2 and 3, tight spread.
  EXPECT_GE(s.avg_degree, 2.0);
  EXPECT_LE(s.avg_degree, 3.2);
  EXPECT_GE(s.min_degree, 1u);
  // Deep: diameter on the order of sqrt(V) or worse.
  const auto profile = frontier_profile(g, 0);
  EXPECT_GT(profile.size(), static_cast<std::size_t>(64));
  // Connected by construction (serpentine path).
  EXPECT_EQ(reachable_count(g, 0), p.n_vertices);
}

TEST(GeneratorTest, RodiniaRandomIsShallowAndConnectedish) {
  RodiniaParams p;
  p.n_vertices = 4096;
  const Graph g = rodinia_random(p);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg_degree, 2.0 * p.avg_degree, 2.5);  // symmetrized
  const auto profile = frontier_profile(g, 0);
  EXPECT_LE(profile.size(), 11u) << "paper: Rodinia datasets have <= 11 levels";
  EXPECT_GT(reachable_count(g, 0), p.n_vertices * 9ull / 10);
}

// ---- Reference BFS ----

TEST(BfsRefTest, LineGraphLevels) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BfsRefTest, UnreachableMarked) {
  const std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[2], kUnreached);
  EXPECT_EQ(reachable_count(g, 0), 2u);
}

TEST(BfsRefTest, CycleHandled) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(BfsRefTest, SourceOutOfRangeThrows) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  EXPECT_THROW((void)bfs_levels(g, 9), std::invalid_argument);
}

// ---- Loaders: round trips ----

TEST(LoaderTest, DimacsRoundTrip) {
  const Graph g = road_network({.n_vertices = 500, .connectivity = 0.6, .seed = 9});
  std::stringstream ss;
  write_dimacs(ss, g);
  const Graph back = load_dimacs(ss);
  EXPECT_EQ(back.row_offsets(), g.row_offsets());
  EXPECT_EQ(back.cols(), g.cols());
}

TEST(LoaderTest, SnapRoundTrip) {
  RmatParams p;
  p.n_vertices = 256;
  p.n_edges = 2048;
  const Graph g = rmat(p);
  std::stringstream ss;
  write_snap(ss, g);
  const Graph back = load_snap(ss);
  // Ids remap in first-seen order; compare structure via degree stats +
  // BFS profile, which are remap-invariant only for isomorphic graphs
  // ... but first-seen order of our own writer preserves vertex ids for
  // every vertex with at least one edge, so compare edge count + stats.
  EXPECT_EQ(back.num_edges(), g.num_edges());
  const DegreeStats a = degree_stats(g), b = degree_stats(back);
  EXPECT_EQ(a.max_degree, b.max_degree);
}

TEST(LoaderTest, RodiniaRoundTrip) {
  const Graph g = rodinia_random({.n_vertices = 300, .avg_degree = 4, .seed = 5});
  std::stringstream ss;
  write_rodinia(ss, g, 17);
  const RodiniaFile back = load_rodinia(ss);
  EXPECT_EQ(back.source, 17u);
  EXPECT_EQ(back.graph.row_offsets(), g.row_offsets());
  EXPECT_EQ(back.graph.cols(), g.cols());
}

TEST(LoaderTest, DimacsParsesReferenceSnippet) {
  std::stringstream ss(
      "c 9th DIMACS style\n"
      "p sp 3 2\n"
      "a 1 2 804\n"
      "a 2 3 101\n");
  const Graph g = load_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(LoaderTest, SnapIgnoresCommentsAndRemaps) {
  std::stringstream ss(
      "# Directed graph\n"
      "# FromNodeId ToNodeId\n"
      "1000 2000\n"
      "2000 1000\n"
      "1000 3000\n");
  const Graph g = load_snap(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(LoaderTest, MalformedInputsThrow) {
  {
    std::stringstream ss("p sp x y\n");
    EXPECT_THROW((void)load_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("a 1 2 3\n");  // arc before header
    EXPECT_THROW((void)load_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("p sp 2 1\na 1 9 1\n");  // endpoint out of range
    EXPECT_THROW((void)load_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("5\n0 1\n");  // truncated Rodinia
    EXPECT_THROW((void)load_rodinia(ss), std::runtime_error);
  }
  {
    std::stringstream ss("hello world again\n");
    EXPECT_THROW((void)load_snap(ss), std::runtime_error);
  }
}

// ---- Degree stats ----

TEST(StatsTest, HandComputedValues) {
  // Degrees: 2, 1, 0.
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_NEAR(s.avg_degree, 1.0, 1e-12);
  EXPECT_NEAR(s.std_degree, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_FALSE(to_string(s).empty());
}

}  // namespace
}  // namespace scq::graph
