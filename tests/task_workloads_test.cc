// Task-framework workloads validated against their serial references
// across queue variants, plus the serial references validated against
// brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "graph/bfs_ref.h"
#include "graph/generators.h"
#include "graph/workload_refs.h"
#include "tasks/workloads/workloads.h"

namespace scq::tasks::workloads {
namespace {

using graph::Graph;
using graph::Vertex;

simt::DeviceConfig small_device() {
  simt::DeviceConfig cfg = simt::spectre_config();
  cfg.name = "small";
  cfg.num_cus = 2;
  cfg.waves_per_cu = 2;
  return cfg;
}

// A multi-component test graph: an rmat core (naturally leaves isolated
// vertices) plus a disjoint ring, so component structure is non-trivial.
Graph multi_component_graph() {
  graph::RmatParams p;
  p.n_vertices = 400;
  p.n_edges = 1200;
  const Graph core = graph::rmat(p);
  std::vector<graph::Edge> edges;
  for (Vertex v = 0; v < core.num_vertices(); ++v) {
    for (Vertex u : core.neighbors(v)) edges.emplace_back(v, u);
  }
  for (Vertex v = 400; v < 440; ++v) {
    edges.emplace_back(v, v + 1 == 440 ? 400 : v + 1);
  }
  return Graph::from_edges(440, edges);
}

const std::vector<QueueVariant> kVariants = {
    QueueVariant::kBase, QueueVariant::kAn, QueueVariant::kRfan,
    QueueVariant::kMq};

// ---- Serial references vs brute force ----

TEST(WorkloadRefs, UnionFindMatchesBruteForceReachability) {
  const Graph g = multi_component_graph();
  const auto label = graph::connected_components_ref(g);
  const Vertex n = g.num_vertices();

  // Brute force: undirected BFS from every vertex; two vertices share a
  // component label iff they reach each other.
  std::vector<std::vector<Vertex>> adj(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex u : g.neighbors(v)) {
      adj[v].push_back(u);
      adj[u].push_back(v);
    }
  }
  std::vector<Vertex> reach_label(n, graph::kInvalidVertex);
  for (Vertex s = 0; s < n; ++s) {
    if (reach_label[s] != graph::kInvalidVertex) continue;
    std::queue<Vertex> q;
    q.push(s);
    reach_label[s] = s;  // s is the smallest unvisited id: canonical
    while (!q.empty()) {
      const Vertex v = q.front();
      q.pop();
      for (Vertex u : adj[v]) {
        if (reach_label[u] == graph::kInvalidVertex) {
          reach_label[u] = s;
          q.push(u);
        }
      }
    }
  }
  EXPECT_EQ(label, reach_label);
}

TEST(WorkloadRefs, PagerankIsAFixedPoint) {
  graph::RmatParams p;
  p.n_vertices = 128;
  p.n_edges = 512;
  const Graph g = graph::rmat(p);
  const double d = 0.85;
  const auto rank = graph::pagerank_ref(g, d, 1e-13);
  // rank must satisfy rank(v) = (1-d) + d * sum_{u->v} rank(u)/deg(u).
  std::vector<double> expect(g.num_vertices(), 1.0 - d);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const std::uint64_t deg = g.out_degree(u);
    if (deg == 0) continue;
    for (Vertex v : g.neighbors(u)) {
      expect[v] += d * rank[u] / static_cast<double>(deg);
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(rank[v], expect[v], 1e-9) << "vertex " << v;
  }
}

TEST(WorkloadRefs, GreedyColoringIsProperAndDeterministic) {
  const Graph g = multi_component_graph();
  const auto color = graph::greedy_coloring_ref(g);
  EXPECT_TRUE(graph::coloring_is_proper(g, color));
  EXPECT_EQ(color, graph::greedy_coloring_ref(g));  // same input, same output
}

// ---- Workloads vs references, across queue variants ----

class WorkloadVariants : public ::testing::TestWithParam<QueueVariant> {};

TEST_P(WorkloadVariants, ConnectedComponentsMatchesUnionFind) {
  const Graph g = multi_component_graph();
  TaskGraphOptions opt;
  opt.variant = GetParam();
  const CcResult r = run_cc(small_device(), g, opt);
  ASSERT_FALSE(r.graph.run.aborted);
  EXPECT_EQ(r.label, graph::connected_components_ref(g));
  EXPECT_EQ(r.graph.stats.executions,
            r.graph.stats.spawns + g.num_vertices());
}

TEST_P(WorkloadVariants, PagerankDeltaMatchesPowerIteration) {
  graph::RmatParams p;
  p.n_vertices = 300;
  p.n_edges = 1500;
  const Graph g = graph::rmat(p);
  PageRankOptions pr;
  pr.threshold = 1e-7;
  TaskGraphOptions opt;
  opt.variant = GetParam();
  const PageRankResult r = run_pagerank_delta(small_device(), g, pr, opt);
  ASSERT_FALSE(r.graph.run.aborted);
  const auto ref = graph::pagerank_ref(g, pr.damping, 1e-13);
  // Push-based propagation truncates residual mass below the spawn
  // threshold; the total truncation is bounded by n*threshold/(1-d).
  const double bound = static_cast<double>(g.num_vertices()) * pr.threshold /
                       (1.0 - pr.damping);
  double l1 = 0.0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    l1 += std::abs(r.rank[v] - ref[v]);
  }
  EXPECT_LE(l1, bound + 1e-9);
}

TEST_P(WorkloadVariants, ColoringRespawnMatchesSerialGreedy) {
  const Graph g = multi_component_graph();
  ColoringOptions co;
  co.use_dependencies = false;
  TaskGraphOptions opt;
  opt.variant = GetParam();
  const ColoringResult r = run_coloring(small_device(), g, co, opt);
  ASSERT_FALSE(r.graph.run.aborted);
  EXPECT_TRUE(graph::coloring_is_proper(g, r.color));
  // Jones-Plassmann by id has serial greedy-by-id as its unique fixed
  // point: identical colors on every variant and schedule.
  EXPECT_EQ(r.color, graph::greedy_coloring_ref(g));
  EXPECT_EQ(r.graph.stats.deferred, 0u);
}

TEST_P(WorkloadVariants, ColoringDependencyModeMatchesSerialGreedy) {
  const Graph g = multi_component_graph();
  ColoringOptions co;
  co.use_dependencies = true;
  TaskGraphOptions opt;
  opt.variant = GetParam();
  const ColoringResult r = run_coloring(small_device(), g, co, opt);
  ASSERT_FALSE(r.graph.run.aborted);
  EXPECT_EQ(r.color, graph::greedy_coloring_ref(g));
  // Credits gate execution exactly: no conflict retries at all, one
  // deferred registration per vertex plus the phase-start task, all
  // released.
  EXPECT_EQ(r.graph.stats.respawns, 0u);
  EXPECT_EQ(r.graph.stats.deferred, g.num_vertices() + std::uint64_t{1});
  EXPECT_EQ(r.graph.stats.released, g.num_vertices() + std::uint64_t{1});
}

TEST_P(WorkloadVariants, ColoringAdversarialOrderStillMatchesSerial) {
  // Descending-id seeding maximizes priority inversions: respawn mode
  // must pay real re-executions yet land on the same fixed point, and
  // dependency mode must stay retry-free (it is order-insensitive).
  const Graph g = multi_component_graph();
  ColoringOptions co;
  co.adversarial_order = true;
  TaskGraphOptions opt;
  opt.variant = GetParam();

  co.use_dependencies = false;
  const ColoringResult respawn = run_coloring(small_device(), g, co, opt);
  ASSERT_FALSE(respawn.graph.run.aborted);
  EXPECT_EQ(respawn.color, graph::greedy_coloring_ref(g));
  EXPECT_GT(respawn.graph.stats.respawns, 0u);

  co.use_dependencies = true;
  const ColoringResult deps = run_coloring(small_device(), g, co, opt);
  ASSERT_FALSE(deps.graph.run.aborted);
  EXPECT_EQ(deps.color, graph::greedy_coloring_ref(g));
  EXPECT_EQ(deps.graph.stats.respawns, 0u);
}

INSTANTIATE_TEST_SUITE_P(Queues, WorkloadVariants,
                         ::testing::ValuesIn(kVariants));

// Banded two-phase coloring: registrations in band 0, coloring in band
// 1, on the multi-queue — the closure frontier must observe both phase
// closes.
TEST(WorkloadPhases, DependencyColoringClosesPhasesOnMq) {
  const Graph g = multi_component_graph();
  ColoringOptions co;
  co.use_dependencies = true;
  TaskGraphOptions opt;
  opt.variant = QueueVariant::kMq;
  opt.num_bands = 2;
  const ColoringResult r = run_coloring(small_device(), g, co, opt);
  ASSERT_FALSE(r.graph.run.aborted);
  EXPECT_EQ(r.color, graph::greedy_coloring_ref(g));
  EXPECT_EQ(r.graph.stats.phase_closes, 2u);
}

}  // namespace
}  // namespace scq::tasks::workloads
