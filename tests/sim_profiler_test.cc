// Tests for the simulator self-profiler: sampling arithmetic, resume
// attribution (noted op vs dispatch), the deterministic/wall-clock
// split of the metrics JSON, and run-to-run determinism of the event
// accounting under a real device schedule — the property that lets
// profiler counts live in a checked-in perf baseline.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>

#include "sim/device.h"
#include "sim/sim_profiler.h"
#include "util/json.h"
#include "util/perf_diff.h"

namespace simt {
namespace {

using scq::util::diff_metrics;
using scq::util::flatten_metrics;
using scq::util::parse_json;

TEST(SimProfilerTest, SampleDueHonorsShift) {
  SimProfiler p({.sample_shift = 6});  // 1 in 64
  EXPECT_TRUE(p.sample_due(0));
  EXPECT_FALSE(p.sample_due(1));
  EXPECT_FALSE(p.sample_due(63));
  EXPECT_TRUE(p.sample_due(64));
  EXPECT_TRUE(p.sample_due(128));
  SimProfiler every({.sample_shift = 0});
  EXPECT_TRUE(every.sample_due(0));
  EXPECT_TRUE(every.sample_due(1));
}

TEST(SimProfilerTest, NoteOpCountsAlwaysOn) {
  SimProfiler p;
  p.note_op(TraceOp::kLoad);
  p.note_op(TraceOp::kLoad);
  p.note_op(TraceOp::kAtomic);
  EXPECT_EQ(p.op_count(TraceOp::kLoad), 2u);
  EXPECT_EQ(p.op_count(TraceOp::kAtomic), 1u);
  EXPECT_EQ(p.op_count(TraceOp::kCompute), 0u);
  EXPECT_EQ(p.total_ops(), 3u);
  p.reset();
  EXPECT_EQ(p.total_ops(), 0u);
}

TEST(SimProfilerTest, ResumeTimeFollowsTheNotedOp) {
  using namespace std::chrono_literals;
  SimProfiler p;
  // A resume that executed a load: its time belongs to the load bucket.
  p.begin_resume();
  p.note_op(TraceOp::kLoad);
  p.end_resume(3us);
  // A resume that executed no wave op: scheduler bookkeeping.
  p.begin_resume();
  p.end_resume(1us);
  p.add_section(SimSection::kHeap, 2us);
  p.add_section(SimSection::kTelemetry, 2us);

  EXPECT_DOUBLE_EQ(p.op_ns(TraceOp::kLoad), 3000.0);
  EXPECT_DOUBLE_EQ(p.section_ns(SimSection::kDispatch), 1000.0);
  EXPECT_DOUBLE_EQ(p.sampled_total_ns(), 8000.0);
  EXPECT_DOUBLE_EQ(p.op_share(TraceOp::kLoad), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(p.section_share(SimSection::kHeap), 2.0 / 8.0);

  // The subsystem rollup partitions the sampled time: shares sum to 1.
  const SimProfiler::SubsystemShares sub = p.subsystem_shares();
  EXPECT_DOUBLE_EQ(sub.heap + sub.telemetry + sub.memory_model + sub.dispatch,
                   1.0);
  EXPECT_DOUBLE_EQ(sub.memory_model, 3.0 / 8.0) << "loads are memory model";
}

TEST(SimProfilerTest, SharesAreZeroWithoutSamples) {
  const SimProfiler p;
  EXPECT_DOUBLE_EQ(p.sampled_total_ns(), 0.0);
  EXPECT_DOUBLE_EQ(p.op_share(TraceOp::kCompute), 0.0);
  EXPECT_DOUBLE_EQ(p.section_share(SimSection::kHeap), 0.0);
  EXPECT_DOUBLE_EQ(p.events_per_sec(), 0.0);
}

// ---- Device integration -------------------------------------------------

DeviceConfig prof_cfg() {
  DeviceConfig c;
  c.num_cus = 2;
  c.waves_per_cu = 2;
  c.mem_latency = 100;
  c.atomic_latency = 40;
  c.atomic_service = 4;
  c.lds_latency = 8;
  c.issue_cost = 2;
  c.kernel_launch_overhead = 500;
  return c;
}

void run_profiled(SimProfiler& prof) {
  // Device::launch brackets the run itself when a profiler is attached.
  Device dev(prof_cfg());
  const Buffer data = dev.alloc(64);
  dev.attach_profiler(&prof);
  (void)dev.launch(2, [&](Wave& w) -> Kernel<void> {
    for (int i = 0; i < 6; ++i) {
      co_await w.compute(50);
      co_await w.load(data.at(static_cast<std::uint64_t>(i)));
      co_await w.atomic_add(data.at(32), 1);
    }
  });
}

TEST(SimProfilerTest, DeviceRunCountsAreDeterministic) {
  SimProfiler a, b;
  run_profiled(a);
  run_profiled(b);
  ASSERT_GT(a.events(), 0u);
  ASSERT_GT(a.total_ops(), 0u);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.cycles(), b.cycles());
  for (unsigned i = 0; i < SimProfiler::kOps; ++i) {
    EXPECT_EQ(a.op_count(static_cast<TraceOp>(i)),
              b.op_count(static_cast<TraceOp>(i)))
        << "op " << to_string(static_cast<TraceOp>(i));
  }
  // The kernel's explicit ops are all accounted: 2 workgroups x 6
  // iterations, one wave-uniform op of each kind per iteration.
  EXPECT_EQ(a.op_count(TraceOp::kCompute), 2u * 6u);
  EXPECT_EQ(a.op_count(TraceOp::kLoad), 2u * 6u);
  EXPECT_EQ(a.op_count(TraceOp::kAtomic), 2u * 6u);
}

TEST(SimProfilerTest, BaselineSubsetOfMetricsJsonDiffsClean) {
  // The contract with bench/perf_diff: a checked-in baseline holds only
  // the deterministic keys; the current artifact's wall-clock extras
  // are ignored, so a same-schedule rerun diffs clean at tolerance 0.
  SimProfiler a, b;
  run_profiled(a);
  run_profiled(b);

  const auto base_doc = parse_json(a.to_metrics_json("prof_test"));
  const auto cur_doc = parse_json(b.to_metrics_json("prof_test"));
  ASSERT_TRUE(base_doc.has_value()) << "metrics export must be valid JSON";
  ASSERT_TRUE(cur_doc.has_value());
  EXPECT_EQ(base_doc->at("bench").str, "prof_test");

  const std::map<std::string, double> current = flatten_metrics(*cur_doc);
  EXPECT_TRUE(current.contains("wall_ms")) << "wall keys exist for humans";
  EXPECT_TRUE(current.contains("share.subsystem.heap"));

  std::map<std::string, double> baseline;
  for (const auto& [key, value] : flatten_metrics(*base_doc)) {
    if (key == "events" || key == "cycles" || key == "total_ops" ||
        key.rfind("ops.", 0) == 0) {
      baseline[key] = value;
    }
  }
  ASSERT_EQ(baseline.size(), 3u + SimProfiler::kOps);
  EXPECT_GT(baseline.at("ops.compute"), 0.0);
  EXPECT_TRUE(diff_metrics(baseline, current, 0.0).ok())
      << "deterministic counts must replay bit-exactly";
}

TEST(SimProfilerTest, RunBracketsAccumulate) {
  SimProfiler p;
  run_profiled(p);
  const std::uint64_t events_once = p.events();
  const Cycle cycles_once = p.cycles();
  run_profiled(p);  // second bracketed run accumulates
  EXPECT_EQ(p.events(), 2 * events_once);
  EXPECT_EQ(p.cycles(), 2 * cycles_once);
  EXPECT_GE(p.wall_seconds(), 0.0);
}

}  // namespace
}  // namespace simt
