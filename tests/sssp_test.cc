// Tests for the SSSP extension: weighted graphs, the Dijkstra
// reference, and the persistent-thread label-correcting SSSP driver
// across queue variants and graph families.
#include <gtest/gtest.h>

#include <sstream>

#include "bfs/pt_sssp.h"

#include "core/counters.h"
#include "graph/generators.h"
#include "graph/loaders.h"
#include "graph/sssp_ref.h"

namespace scq::bfs {
namespace {

using graph::WeightedEdge;

simt::DeviceConfig small_device() {
  simt::DeviceConfig cfg = simt::spectre_config();
  cfg.num_cus = 4;
  cfg.waves_per_cu = 2;
  cfg.kernel_launch_overhead = 500;
  return cfg;
}

// ---- Weighted graph plumbing ----

TEST(WeightedGraphTest, FromWeightedEdgesKeepsWeights) {
  const std::vector<WeightedEdge> edges{{0, 1, 5}, {0, 2, 2}, {1, 2, 9}};
  const graph::Graph g = graph::Graph::from_weighted_edges(3, edges);
  ASSERT_TRUE(g.has_weights());
  EXPECT_EQ(g.num_edges(), 3u);
  // cols sorted per vertex: 0->1 (w5), 0->2 (w2), 1->2 (w9).
  EXPECT_EQ(g.weight(0), 5u);
  EXPECT_EQ(g.weight(1), 2u);
  EXPECT_EQ(g.weight(2), 9u);
}

TEST(WeightedGraphTest, SymmetrizeDuplicatesWeights) {
  const std::vector<WeightedEdge> edges{{0, 1, 7}};
  const graph::Graph g = graph::Graph::from_weighted_edges(2, edges, true);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.weight(0), 7u);
  EXPECT_EQ(g.weight(1), 7u);
}

TEST(WeightedGraphTest, UnweightedDefaultsToOne) {
  const graph::Graph g =
      graph::Graph::from_edges(2, std::vector<graph::Edge>{{0, 1}});
  EXPECT_FALSE(g.has_weights());
  EXPECT_EQ(g.weight(0), 1u);
}

TEST(WeightedGraphTest, SetWeightsValidatesSize) {
  graph::Graph g = graph::Graph::from_edges(2, std::vector<graph::Edge>{{0, 1}});
  EXPECT_THROW(g.set_weights({1, 2}), std::invalid_argument);
  g.set_weights({4});
  EXPECT_EQ(g.weight(0), 4u);
}

TEST(WeightedGraphTest, RandomWeightsDeterministic) {
  const graph::Graph base = graph::road_network({.n_vertices = 500, .seed = 3});
  const graph::Graph a = graph::with_random_weights(base, 42, 10);
  const graph::Graph b = graph::with_random_weights(base, 42, 10);
  EXPECT_EQ(a.weights(), b.weights());
  for (const auto w : a.weights()) {
    ASSERT_GE(w, 1u);
    ASSERT_LE(w, 10u);
  }
}

TEST(WeightedGraphTest, DimacsRoundTripsWeights) {
  const graph::Graph g = graph::with_random_weights(
      graph::road_network({.n_vertices = 200, .seed = 5}), 9, 30);
  std::stringstream ss;
  graph::write_dimacs(ss, g);
  const graph::Graph back = graph::load_dimacs(ss);
  ASSERT_TRUE(back.has_weights());
  EXPECT_EQ(back.cols(), g.cols());
  EXPECT_EQ(back.weights(), g.weights());
}

// ---- Dijkstra reference ----

TEST(DijkstraTest, HandComputedDiamond) {
  //    0 --1--> 1 --1--> 3
  //    0 --5--> 2 --1--> 3 : dist(3) via top path = 2
  const std::vector<WeightedEdge> edges{
      {0, 1, 1}, {1, 3, 1}, {0, 2, 5}, {2, 3, 1}};
  const graph::Graph g = graph::Graph::from_weighted_edges(4, edges);
  const auto dist = graph::dijkstra(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint64_t>{0, 1, 5, 2}));
}

TEST(DijkstraTest, UnweightedEqualsBfsLevels) {
  const graph::Graph g = graph::rodinia_random({.n_vertices = 800, .seed = 7});
  const auto dist = graph::dijkstra(g, 0);
  const auto levels = graph::bfs_levels(g, 0);
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == graph::kUnreached) {
      EXPECT_EQ(dist[v], graph::kUnreachableDist);
    } else {
      EXPECT_EQ(dist[v], levels[v]);
    }
  }
}

TEST(DijkstraTest, UnreachableMarked) {
  const graph::Graph g =
      graph::Graph::from_edges(3, std::vector<graph::Edge>{{0, 1}});
  const auto dist = graph::dijkstra(g, 0);
  EXPECT_EQ(dist[2], graph::kUnreachableDist);
}

// ---- Device SSSP across variants ----

class SsspVariant : public ::testing::TestWithParam<QueueVariant> {};

TEST_P(SsspVariant, MatchesDijkstraOnWeightedRoad) {
  const graph::Graph g = graph::with_random_weights(
      graph::road_network({.n_vertices = 1200, .seed = 13}), 77, 10);
  const auto ref = graph::dijkstra(g, 0);
  PtSsspOptions opt;
  opt.variant = GetParam();
  const SsspResult result = run_pt_sssp(small_device(), g, 0, opt);
  ASSERT_FALSE(result.run.aborted) << result.run.abort_reason;
  EXPECT_EQ(result.dist, ref);
}

TEST_P(SsspVariant, MatchesDijkstraOnWeightedRandomGraph) {
  const graph::Graph g = graph::with_random_weights(
      graph::rodinia_random({.n_vertices = 1500, .seed = 31}), 5, 50);
  const auto ref = graph::dijkstra(g, 0);
  PtSsspOptions opt;
  opt.variant = GetParam();
  const SsspResult result = run_pt_sssp(small_device(), g, 0, opt);
  ASSERT_FALSE(result.run.aborted) << result.run.abort_reason;
  EXPECT_EQ(result.dist, ref);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SsspVariant,
    ::testing::Values(QueueVariant::kBase, QueueVariant::kAn,
                      QueueVariant::kRfan, QueueVariant::kDistrib),
    [](const auto& i) {
      switch (i.param) {
        case QueueVariant::kBase: return "BASE";
        case QueueVariant::kAn: return "AN";
        case QueueVariant::kRfan: return "RFAN";
        case QueueVariant::kDistrib: return "DISTRIB";
        default: return "OTHER";
      }
    });

TEST(SsspTest, UnweightedGraphEqualsBfs) {
  const graph::Graph g = graph::synthetic_kary(3000, 4);
  const SsspResult result = run_pt_sssp(small_device(), g, 0, PtSsspOptions{});
  const auto levels = graph::bfs_levels(g, 0);
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == graph::kUnreached) {
      EXPECT_EQ(result.dist[v], graph::kUnreachableDist);
    } else {
      EXPECT_EQ(result.dist[v], levels[v]);
    }
  }
}

TEST(SsspTest, ReEnqueuesAreCounted) {
  // With spread-out weights, label correcting must improve some labels.
  const graph::Graph g = graph::with_random_weights(
      graph::rodinia_random({.n_vertices = 2000, .seed = 8}), 3, 100);
  const SsspResult result = run_pt_sssp(small_device(), g, 0, PtSsspOptions{});
  EXPECT_GT(result.run.stats.user[kDupEnqueues], 0u);
  EXPECT_EQ(result.dist, graph::dijkstra(g, 0));
}

TEST(SsspTest, SourceOutOfRangeThrows) {
  const graph::Graph g = graph::synthetic_kary(10, 4);
  EXPECT_THROW((void)run_pt_sssp(small_device(), g, 99, PtSsspOptions{}),
               simt::SimError);
}

}  // namespace
}  // namespace scq::bfs
