// Randomized property sweeps tying the whole stack together:
//   * BFS levels match the serial reference for random graphs across
//     every scheduler variant and random seeds (TEST_P sweep).
//   * Token conservation holds for random task DAGs.
//   * The host broker queue's claim/poll API is linearizable with
//     respect to batch boundaries under randomized interleavings.
#include <gtest/gtest.h>

#include <map>

#include "bfs/pt_bfs.h"
#include "core/counters.h"
#include "core/host_queue.h"
#include "core/pt_driver.h"
#include "core/ext_schedulers.h"
#include "graph/bfs_ref.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace scq {
namespace {

simt::DeviceConfig prop_device(std::uint32_t cus) {
  simt::DeviceConfig cfg;
  cfg.name = "prop";
  cfg.num_cus = cus;
  cfg.waves_per_cu = 2;
  cfg.mem_latency = 120;
  cfg.atomic_latency = 40;
  cfg.atomic_service = 3;
  cfg.lds_latency = 10;
  cfg.issue_cost = 3;
  cfg.kernel_launch_overhead = 800;
  return cfg;
}

// Random graph drawn from a seed: mixes families so the sweep covers
// trees, power-law, lattices and random graphs.
graph::Graph random_graph(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto family = rng.below(4);
  const auto n = static_cast<graph::Vertex>(500 + rng.below(2500));
  switch (family) {
    case 0:
      return graph::synthetic_kary(n, 2 + static_cast<unsigned>(rng.below(5)));
    case 1: {
      graph::RmatParams p;
      p.n_vertices = n;
      p.n_edges = n * (2 + rng.below(8));
      p.seed = seed * 31 + 7;
      return graph::rmat(p);
    }
    case 2:
      return graph::road_network({.n_vertices = n, .seed = seed * 13 + 1});
    default:
      return graph::rodinia_random(
          {.n_vertices = n,
           .avg_degree = 2 + static_cast<unsigned>(rng.below(5)),
           .seed = seed * 17 + 3});
  }
}

class RandomGraphBfs
    : public ::testing::TestWithParam<std::tuple<QueueVariant, int>> {};

TEST_P(RandomGraphBfs, LevelsAlwaysMatchReference) {
  const auto& [variant, seed] = GetParam();
  const graph::Graph g = random_graph(static_cast<std::uint64_t>(seed));
  const graph::Vertex source =
      static_cast<graph::Vertex>(seed * 37 % g.num_vertices());
  const auto ref = graph::bfs_levels(g, source);

  bfs::PtBfsOptions opt;
  opt.variant = variant;
  if (variant == QueueVariant::kStack) opt.queue_headroom = 16.0;
  const bfs::BfsResult result =
      bfs::run_pt_bfs(prop_device(3 + seed % 4), g, source, opt);
  ASSERT_FALSE(result.run.aborted) << result.run.abort_reason;
  EXPECT_TRUE(bfs::matches_reference(result.levels, ref))
      << "seed " << seed << ": " << bfs::first_mismatch(result.levels, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphBfs,
    ::testing::Combine(::testing::Values(QueueVariant::kBase, QueueVariant::kAn,
                                         QueueVariant::kRfan,
                                         QueueVariant::kDistrib),
                       ::testing::Range(1, 6)),
    [](const auto& i) {
      std::string name;
      switch (std::get<0>(i.param)) {
        case QueueVariant::kBase: name = "BASE"; break;
        case QueueVariant::kAn: name = "AN"; break;
        case QueueVariant::kRfan: name = "RFAN"; break;
        case QueueVariant::kDistrib: name = "DISTRIB"; break;
        default: name = "STACK"; break;
      }
      return name + "_seed" + std::to_string(std::get<1>(i.param));
    });

TEST(RandomDagConservation, EveryVariantConservesRandomDags) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto variant :
         {QueueVariant::kRfan, QueueVariant::kStack, QueueVariant::kDistrib}) {
      simt::Device dev(prop_device(4));
      auto queue = make_scheduler(dev, variant, 1 << 16);
      util::Xoshiro256 rng(seed);
      std::map<std::uint64_t, int> visits;
      std::uint64_t next_id = 1;
      const std::vector<std::uint64_t> seeds{0};
      const auto run = run_persistent_tasks(
          dev, *queue, seeds, [&](std::uint64_t token, const auto& emit) {
            visits[token] += 1;
            const std::uint64_t depth = token & 0xff;
            if (depth >= 7) return;
            const std::uint64_t fanout =
                depth < 2 ? 3 : rng.below(4);  // ramp then irregular
            for (std::uint64_t i = 0; i < fanout; ++i) {
              emit((next_id++ << 8) | (depth + 1));
            }
          });
      ASSERT_FALSE(run.aborted) << run.abort_reason;
      for (const auto& [token, count] : visits) {
        ASSERT_EQ(count, 1) << "variant " << to_string(variant) << " seed "
                            << seed << " token " << token;
      }
      EXPECT_EQ(visits.size(), next_id);
    }
  }
}

TEST(HostBrokerProperty, RandomizedClaimPollInterleavings) {
  // Single-threaded adversarial schedule: randomly interleave batch
  // enqueues with claim/poll consumers and verify exactly-once, in-order
  // delivery per ticket.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Xoshiro256 rng(seed);
    HostBrokerQueue<std::uint64_t> q(64);
    std::uint64_t produced = 0, consumed = 0;
    std::vector<HostBrokerQueue<std::uint64_t>::Ticket> tickets;
    std::uint64_t claimed_total = 0;
    std::uint64_t expected_next = 0;

    auto poll_all = [&] {
      for (auto& t : tickets) {
        std::array<std::uint64_t, 8> out{};
        const std::uint64_t start = t.first + t.consumed;
        const auto got = q.poll(t, out);
        for (std::uint32_t i = 0; i < got; ++i) {
          ASSERT_EQ(out[i], start + i) << "ticket delivery must be in order";
        }
        consumed += got;
      }
    };

    for (int step = 0; step < 400; ++step) {
      if (rng.chance(0.5) && produced - consumed < 48) {
        // Publish a batch of 1..8 sequential values. A ring slot only
        // recycles when its claimant polls it, and this test is single-
        // threaded, so drain every ticket first — a blocking enqueue
        // against an unpolled low ticket would deadlock.
        poll_all();
        const std::size_t n = 1 + rng.below(8);
        std::vector<std::uint64_t> batch;
        for (std::size_t i = 0; i < n; ++i) batch.push_back(produced++);
        if (produced - consumed < q.capacity()) {
          ASSERT_TRUE(q.enqueue_batch(batch));
        } else {
          produced -= n;  // ring genuinely full of unpolled claims: skip
        }
      } else if (rng.chance(0.6) && claimed_total < produced + 16) {
        tickets.push_back(q.claim_slots(1 + static_cast<std::uint32_t>(rng.below(4))));
        claimed_total += tickets.back().count;
      } else if (!tickets.empty()) {
        // Poll a random ticket; consumed values must be globally ordered
        // by ticket start (tickets partition the sequence space).
        auto& t = tickets[rng.below(tickets.size())];
        std::array<std::uint64_t, 8> out{};
        const std::uint64_t start = t.first + t.consumed;
        const auto got = q.poll(t, out);
        for (std::uint32_t i = 0; i < got; ++i) {
          ASSERT_EQ(out[i], start + i) << "ticket delivery must be in order";
        }
        consumed += got;
      }
    }
    // Drain: publish enough for all claims, polling tickets whenever the
    // ring is full (a blocking enqueue could deadlock single-threaded).
    auto poll_everything = [&] {
      for (auto& t : tickets) {
        std::array<std::uint64_t, 8> out{};
        consumed += q.poll(t, out);
      }
    };
    int guard = 0;
    while (produced < claimed_total && guard++ < 100'000) {
      if (q.try_enqueue(produced)) {
        ++produced;
      } else {
        poll_everything();
      }
    }
    guard = 0;
    while (consumed < claimed_total && guard++ < 100'000) poll_everything();
    for (const auto& t : tickets) ASSERT_TRUE(t.done());
    EXPECT_EQ(consumed, claimed_total);
    (void)expected_next;
  }
}

TEST(DeterminismProperty, WholeStackIsReproducible) {
  for (const auto variant : {QueueVariant::kRfan, QueueVariant::kDistrib}) {
    const graph::Graph g = random_graph(9);
    bfs::PtBfsOptions opt;
    opt.variant = variant;
    const auto a = bfs::run_pt_bfs(prop_device(4), g, 0, opt);
    const auto b = bfs::run_pt_bfs(prop_device(4), g, 0, opt);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.stats.user[kWorkCycles], b.run.stats.user[kWorkCycles]);
    EXPECT_EQ(a.levels, b.levels);
  }
}

}  // namespace
}  // namespace scq
