// Quickstart: the host-side retry-free / arbitrary-n broker queue.
//
// Shows the three ways to use scq::HostBrokerQueue<T>:
//   1. plain enqueue/dequeue across threads,
//   2. batch operations (arbitrary-n: one fetch_add per batch),
//   3. the claim/poll monitor API (retry-free dequeue: claim a unique
//      slot, then watch it for data arrival — the paper's refactored
//      queue-empty exception).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "core/host_queue.h"

int main() {
  // 1. Plain MPMC usage. ------------------------------------------------
  scq::HostBrokerQueue<int> queue(256);

  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      if (!queue.enqueue(i)) return;  // false only after close()
    }
  });

  long long sum = 0;
  for (int received = 0; received < 1000; ++received) {
    sum += queue.dequeue().value();
  }
  producer.join();
  std::printf("1) moved 1000 items across threads, sum = %lld (expect %lld)\n",
              sum, 999LL * 1000 / 2);

  // 2. Arbitrary-n batches: one atomic claims space for all of them. ----
  std::vector<std::uint64_t> batch(64);
  std::iota(batch.begin(), batch.end(), 0);
  scq::HostBrokerQueue<std::uint64_t> wide(1024);
  (void)wide.enqueue_batch(batch);          // one fetch_add(64)
  std::vector<std::uint64_t> out(64);
  (void)wide.dequeue_batch(out);            // one fetch_add(64)
  std::printf("2) batch of %zu moved with two atomics total (first=%llu last=%llu)\n",
              out.size(), static_cast<unsigned long long>(out.front()),
              static_cast<unsigned long long>(out.back()));

  // 3. Claim/poll: dequeue data that does not exist yet. -----------------
  // claim_slots() never fails and never blocks — it hands us tickets to
  // monitor, exactly like the GPU scheduler's slot assignment.
  scq::HostBrokerQueue<int> broker(64);
  auto ticket = broker.claim_slots(3);
  std::array<int, 3> got{};
  std::printf("3) claimed 3 slots before any data: poll -> %u items\n",
              broker.poll(ticket, got));

  (void)broker.enqueue(10);
  (void)broker.enqueue(11);
  const auto first = broker.poll(ticket, got);
  std::printf("   after 2 enqueues:              poll -> %u items (%d, %d)\n",
              first, got[0], got[1]);

  (void)broker.enqueue(12);
  const auto rest = broker.poll(ticket, std::span<int>(got).subspan(2));
  std::printf("   after 1 more:                  poll -> %u item  (%d); done=%s\n",
              rest, got[2], ticket.done() ? "true" : "false");
  return 0;
}
