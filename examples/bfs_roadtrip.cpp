// End-to-end BFS on the simulated GPU: generate (or load) a road
// network, traverse it with the persistent-thread scheduler under each
// queue variant, validate against the serial reference, and report the
// retry statistics that motivate the RF/AN design.
//
// Usage:
//   ./bfs_roadtrip                         # generated road network
//   ./bfs_roadtrip --file USA-road-d.NY.gr # real DIMACS file
//   ./bfs_roadtrip --vertices 100000 --source 7 --device Spectre
#include <cstdio>

#include "bfs/pt_bfs.h"
#include "core/counters.h"
#include "graph/bfs_ref.h"
#include "graph/generators.h"
#include "graph/loaders.h"
#include "graph/stats.h"
#include "util/args.h"

using namespace scq;

int main(int argc, char** argv) {
  util::ArgParser args("bfs_roadtrip", "persistent-thread BFS demo");
  args.add_string("file", "DIMACS .gr / SNAP / .rodinia graph file", "");
  args.add_int("vertices", "generated road-network size (if no file)", 50'000);
  args.add_int("source", "BFS source vertex", 0);
  args.add_string("device", "Fiji or Spectre", "Fiji");
  if (!args.parse(argc, argv)) return 2;

  // 1. Get a graph.
  graph::Graph g;
  if (const std::string& path = args.get_string("file"); !path.empty()) {
    g = graph::load_file(path);
    std::printf("loaded %s\n", path.c_str());
  } else {
    graph::RoadParams p;
    p.n_vertices = static_cast<graph::Vertex>(args.get_int("vertices"));
    g = graph::road_network(p);
    std::printf("generated road network\n");
  }
  std::printf("  %s\n", graph::to_string(graph::degree_stats(g)).c_str());

  const auto source = static_cast<graph::Vertex>(args.get_int("source"));
  const auto ref = graph::bfs_levels(g, source);
  const auto profile = graph::frontier_profile(g, source);
  std::printf("  BFS depth %zu, %llu reachable vertices\n\n", profile.size(),
              static_cast<unsigned long long>(
                  graph::reachable_count(g, source)));

  // 2. Traverse with each queue variant on the simulated GPU.
  const simt::DeviceConfig device = args.get_string("device") == "Spectre"
                                        ? simt::spectre_config()
                                        : simt::fiji_config();
  std::printf("device %s: %u CUs, %u persistent threads\n\n",
              device.name.c_str(), device.num_cus, device.max_threads());

  for (const auto variant :
       {QueueVariant::kBase, QueueVariant::kAn, QueueVariant::kRfan}) {
    bfs::PtBfsOptions opt;
    opt.variant = variant;
    const bfs::BfsResult result = bfs::run_pt_bfs(device, g, source, opt);
    if (result.run.aborted) {
      std::fprintf(stderr, "%s aborted: %s\n",
                   std::string(to_string(variant)).c_str(),
                   result.run.abort_reason.c_str());
      return 1;
    }
    const bool ok = bfs::matches_reference(result.levels, ref);
    std::printf("%-6s %8.3f ms   scheduler atomics %-10llu CAS failures %-10llu %s\n",
                std::string(to_string(variant)).c_str(),
                result.run.seconds * 1e3,
                static_cast<unsigned long long>(
                    result.run.stats.user[kQueueAtomics]),
                static_cast<unsigned long long>(result.run.stats.cas_failures),
                ok ? "levels verified" : "LEVELS WRONG");
    if (!ok) {
      std::fprintf(stderr, "  %s\n",
                   bfs::first_mismatch(result.levels, ref).c_str());
      return 1;
    }
  }
  return 0;
}
