// Generic persistent-thread task scheduling beyond BFS: a dynamic task
// DAG executed by run_persistent_tasks() with a pluggable queue variant.
//
// The workload mimics a dependency-driven build/render pipeline: each
// task optionally spawns children with data-dependent fan-out (the
// "irregular workload" of the paper's title), and the harness shows the
// scheduler is workload-agnostic.
//
// Usage: ./task_scheduler [--depth 8] [--variant rfan|an|base]
#include <cstdio>
#include <map>

#include "core/counters.h"
#include "core/pt_driver.h"
#include "util/args.h"
#include "util/prng.h"

using namespace scq;

int main(int argc, char** argv) {
  util::ArgParser args("task_scheduler", "generic irregular task DAG demo");
  args.add_int("depth", "maximum task recursion depth", 8);
  args.add_string("variant", "queue variant: base, an, rfan", "rfan");
  if (!args.parse(argc, argv)) return 2;

  QueueVariant variant = QueueVariant::kRfan;
  if (args.get_string("variant") == "base") variant = QueueVariant::kBase;
  if (args.get_string("variant") == "an") variant = QueueVariant::kAn;
  const auto max_depth = static_cast<std::uint64_t>(args.get_int("depth"));

  // A modest simulated GPU.
  simt::DeviceConfig cfg = simt::spectre_config();
  simt::Device dev(cfg);

  // Token encoding: low 8 bits depth, rest a unique task id.
  const QueueLayout layout = make_device_queue(dev, 1 << 22);
  auto queue = make_queue_variant(variant, layout);

  // Host-side task logic: data-dependent fan-out (0-4 children) driven
  // by a deterministic PRNG, so the DAG is irregular but reproducible.
  util::Xoshiro256 rng(42);
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, std::uint64_t> tasks_per_depth;

  const std::vector<std::uint64_t> seeds{0};  // root task, depth 0
  const simt::RunResult run = run_persistent_tasks(
      dev, *queue, seeds,
      [&](std::uint64_t token, const auto& emit) {
        const std::uint64_t depth = token & 0xff;
        tasks_per_depth[depth] += 1;
        if (depth >= max_depth) return;
        // Data-dependent fan-out; shallow tasks always spawn so the DAG
        // ramps up before the irregularity kicks in.
        const std::uint64_t fanout =
            depth < 3 ? 2 + rng.below(3) : rng.below(4);  // 2-4 then 0-3
        for (std::uint64_t i = 0; i < fanout; ++i) {
          emit((next_id++ << 8) | (depth + 1));
        }
      });

  if (run.aborted) {
    std::fprintf(stderr, "aborted: %s\n", run.abort_reason.c_str());
    return 1;
  }

  std::uint64_t total = 0;
  std::printf("dynamic task DAG executed with the %s queue:\n",
              std::string(to_string(variant)).c_str());
  for (const auto& [depth, count] : tasks_per_depth) {
    std::printf("  depth %2llu: %llu tasks\n",
                static_cast<unsigned long long>(depth),
                static_cast<unsigned long long>(count));
    total += count;
  }
  std::printf("total %llu tasks in %.3f ms simulated (%llu work cycles, "
              "%llu scheduler atomics, %llu CAS failures)\n",
              static_cast<unsigned long long>(total), run.seconds * 1e3,
              static_cast<unsigned long long>(run.stats.user[kWorkCycles]),
              static_cast<unsigned long long>(run.stats.user[kQueueAtomics]),
              static_cast<unsigned long long>(run.stats.cas_failures));

  // Conservation invariant: every enqueued token was processed.
  const std::uint64_t rear = dev.read_word(layout.rear_addr());
  const std::uint64_t completed = dev.read_word(layout.completed_addr());
  std::printf("queue says: enqueued=%llu completed=%llu (%s)\n",
              static_cast<unsigned long long>(rear),
              static_cast<unsigned long long>(completed),
              rear == completed && rear == total ? "conserved" : "MISMATCH");
  return rear == completed && rear == total ? 0 : 1;
}
