// Writing a custom kernel against the SIMT simulator directly.
//
// Demonstrates the device API the queue library itself is built on:
// wavefronts as coroutines, per-lane vector memory operations, the
// serializing atomic unit, and the statistics it produces. The kernel
// builds a histogram two ways — per-lane atomics on a handful of hot
// bins vs privatized per-wave bins — and shows the contention gap, the
// same effect the proxy-thread design exploits (§3.3).
//
// Usage: ./wavefront_playground [--bins 4] [--items 65536]
#include <cstdio>
#include <vector>

#include "sim/device.h"
#include "util/args.h"
#include "util/prng.h"

using namespace simt;

int main(int argc, char** argv) {
  scq::util::ArgParser args("wavefront_playground", "custom-kernel demo");
  args.add_int("bins", "histogram bins (fewer = hotter)", 2);
  args.add_int("items", "input elements", 1 << 20);
  args.add_string("trace", "write a Chrome trace JSON of kernel B here", "");
  if (!args.parse(argc, argv)) return 2;

  const auto n_bins = static_cast<std::uint64_t>(args.get_int("bins"));
  const auto n_items = static_cast<std::uint64_t>(args.get_int("items"));

  DeviceConfig cfg = fiji_config();
  Device dev(cfg);
  TraceRecorder trace;

  // Host setup: input data + two result buffers.
  Buffer input = dev.alloc(n_items);
  Buffer hot_bins = dev.alloc(n_bins);
  Buffer private_bins = dev.alloc(n_bins * cfg.resident_waves());
  Buffer final_bins = dev.alloc(n_bins);
  scq::util::Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < n_items; ++i) {
    dev.write_word(input.at(i), rng.below(n_bins));
  }

  const std::uint32_t wgs = cfg.resident_waves();
  const std::uint64_t per_wave = (n_items + wgs - 1) / wgs;

  // Kernel A: every lane atomically bumps a shared bin — all traffic
  // lands on n_bins hot addresses and serializes at the atomic unit.
  const auto naive = dev.launch(wgs, [&](Wave& w) -> Kernel<void> {
    const std::uint64_t begin = w.workgroup_id() * per_wave;
    const std::uint64_t end = std::min(begin + per_wave, n_items);
    for (std::uint64_t i = begin; i < end; i += kWaveWidth) {
      std::array<Addr, kWaveWidth> in{}, bins{};
      std::array<std::uint64_t, kWaveWidth> vals{}, ones{};
      LaneMask active = 0;
      for (unsigned lane = 0; lane < kWaveWidth && i + lane < end; ++lane) {
        active |= LaneMask{1} << lane;
        in[lane] = input.at(i + lane);
      }
      co_await w.load_lanes(active, in, vals);
      for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
        if ((active >> lane) & 1u) {
          bins[lane] = hot_bins.at(vals[lane]);
          ones[lane] = 1;
        }
      }
      co_await w.atomic_lanes(AtomicKind::kAdd, active, bins, ones);
    }
  });

  if (!args.get_string("trace").empty()) dev.attach_tracer(&trace);

  // Kernel B: privatized per-wave bins (no contention), then one wave
  // reduces — the "aggregate before touching shared state" idea.
  const auto privatized = dev.launch(wgs, [&](Wave& w) -> Kernel<void> {
    const std::uint64_t begin = w.workgroup_id() * per_wave;
    const std::uint64_t end = std::min(begin + per_wave, n_items);
    std::vector<std::uint64_t> local(n_bins, 0);
    for (std::uint64_t i = begin; i < end; i += kWaveWidth) {
      std::array<Addr, kWaveWidth> in{};
      std::array<std::uint64_t, kWaveWidth> vals{};
      LaneMask active = 0;
      for (unsigned lane = 0; lane < kWaveWidth && i + lane < end; ++lane) {
        active |= LaneMask{1} << lane;
        in[lane] = input.at(i + lane);
      }
      co_await w.load_lanes(active, in, vals);
      co_await w.lds_ops(static_cast<std::uint32_t>(std::popcount(active)));
      for (unsigned lane = 0; lane < kWaveWidth; ++lane) {
        if ((active >> lane) & 1u) local[vals[lane]] += 1;
      }
    }
    // One store + one shared atomic per bin per wave.
    for (std::uint64_t b = 0; b < n_bins; ++b) {
      co_await w.store(private_bins.at(w.workgroup_id() * n_bins + b), local[b]);
      co_await w.atomic_add(final_bins.at(b), local[b]);
    }
  });

  // Validate both against each other and the input.
  std::vector<std::uint64_t> expect(n_bins, 0);
  for (std::uint64_t i = 0; i < n_items; ++i) expect[dev.read_word(input.at(i))]++;
  bool ok = true;
  for (std::uint64_t b = 0; b < n_bins; ++b) {
    ok &= dev.read_word(hot_bins.at(b)) == expect[b];
    ok &= dev.read_word(final_bins.at(b)) == expect[b];
  }

  std::printf("histogram of %llu items into %llu bins on %u waves (%s)\n",
              static_cast<unsigned long long>(n_items),
              static_cast<unsigned long long>(n_bins), wgs,
              ok ? "both kernels correct" : "MISMATCH");
  std::printf("  per-lane shared atomics: %9llu cycles (%llu atomic ops)\n",
              static_cast<unsigned long long>(naive.cycles),
              static_cast<unsigned long long>(naive.stats.afa_ops));
  std::printf("  privatized + reduce:     %9llu cycles (%llu atomic ops)\n",
              static_cast<unsigned long long>(privatized.cycles),
              static_cast<unsigned long long>(privatized.stats.afa_ops));
  std::printf("  contention speedup: %.2fx — why the proxy thread exists\n",
              static_cast<double>(naive.cycles) /
                  static_cast<double>(privatized.cycles));
  if (const std::string& path = args.get_string("trace"); !path.empty()) {
    if (trace.write_chrome_json(path)) {
      std::printf("  wrote %zu trace slices -> %s (open in chrome://tracing)\n",
                  trace.events().size(), path.c_str());
    }
  }
  return ok ? 0 : 1;
}
